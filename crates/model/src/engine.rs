//! The inference engine: embedding, decoder stack, LM head, and greedy
//! autoregressive generation with a KV cache.

use crate::attention::KvCacheBlock;
use crate::block::{block_forward_into, normed_into};
use crate::config::{ArchStyle, ModelConfig, RopeTable};
use crate::hooks::{AnomalyVerdict, StepReport, TapList};
use crate::scratch::DecodeScratch;
use crate::state::{StateCtx, StateTapList};
use crate::weights::ModelWeights;
use ft2_tensor::{argmax, KernelPolicy, Matrix};
use std::time::Instant;

/// A model instance: configuration plus its synthetic checkpoint.
pub struct Model {
    config: ModelConfig,
    weights: ModelWeights,
    /// Precomputed RoPE angles (Llama-style models only).
    rope: Option<RopeTable>,
}

impl Clone for Model {
    /// A bit-identical copy of the model (weights are plain `f32` buffers),
    /// so replica sets can stamp out N instances from one prototype without
    /// re-deriving the synthetic checkpoint N times.
    fn clone(&self) -> Model {
        Model {
            config: self.config.clone(),
            weights: self.weights.clone(),
            rope: self.rope.clone(),
        }
    }
}

/// How the engine reacts to a [`AnomalyVerdict::Storm`] during decode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Maximum re-decodes of one token before the generation is declared
    /// [`GenerationOutput::recovery_failed`]. `0` disables rollback: storm
    /// verdicts are recorded but the token is accepted as-is.
    pub max_retries: u32,
    /// After the retry budget is exhausted, take one
    /// [`RecoveryAction::RepairAndRetry`] rung: run the registered state
    /// taps' full repair sweep (weights restored from the golden copy,
    /// poisoned KV pages invalidated and re-decoded) and grant one extra
    /// re-decode. Meaningless without state taps.
    pub repair: bool,
    /// Sharded execution only: how many times one shard's partial GEMM is
    /// re-executed after a shard-scoped failure (crash, hang, anomalous
    /// partial) before escalating to the repair rung. The unsharded
    /// engine ignores this field.
    pub shard_reexec: u32,
    /// Sharded execution only: when a shard failure survives re-execution
    /// and repair, evict the shard, re-partition onto the survivors, and
    /// keep generating (reported as degraded) instead of failing the
    /// generation. The unsharded engine ignores this field.
    pub shard_degrade: bool,
}

impl RecoveryPolicy {
    /// No rollback — the pre-recovery engine behaviour.
    pub fn disabled() -> RecoveryPolicy {
        RecoveryPolicy {
            max_retries: 0,
            repair: false,
            shard_reexec: 0,
            shard_degrade: false,
        }
    }

    /// Roll back and re-decode a storming token up to `n` times. Sharded
    /// runs get one shard re-execution by default, matching the
    /// transient-fault assumption of the rollback rung.
    pub fn retries(n: u32) -> RecoveryPolicy {
        RecoveryPolicy {
            max_retries: n,
            repair: false,
            shard_reexec: 1,
            shard_degrade: false,
        }
    }

    /// Enable the repair-and-retry rung above the retry budget.
    pub fn with_repair(mut self) -> RecoveryPolicy {
        self.repair = true;
        self
    }

    /// Set the per-linear shard re-execution budget (sharded runs).
    pub fn with_shard_reexec(mut self, n: u32) -> RecoveryPolicy {
        self.shard_reexec = n;
        self
    }

    /// Enable the terminal degrade rung (sharded runs): evict a dead
    /// shard and keep serving on the survivors.
    pub fn with_shard_degrade(mut self) -> RecoveryPolicy {
        self.shard_degrade = true;
        self
    }

    /// Is rollback recovery active?
    pub fn enabled(&self) -> bool {
        self.max_retries > 0
    }
}

/// The rung of the recovery ladder the engine takes after a storming
/// decode step (reported for tracing; the ladder escalates top to bottom).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryAction {
    /// Accept the step: verdict was clean/corrected, or rollback disabled.
    Accept,
    /// Roll back the token and re-decode with escalated protection — the
    /// transient-fault rung: a once-only fault is gone on re-decode.
    EscalateAndRetry,
    /// Retry budget exhausted and still storming: repair stored state
    /// (weights from golden, poisoned KV invalidated) and re-decode once
    /// more — the persistent-fault rung, above escalate-and-retry.
    RepairAndRetry,
    /// Nothing left to try: the generation is marked recovery-failed.
    Fail,
}

/// What happened at one generation step (the finally-accepted execution).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StepRecord {
    /// Generation step (0 = prefill).
    pub step: usize,
    /// Merged tap report of the accepted execution of this step.
    pub report: StepReport,
    /// Rollback re-decodes taken before the step was accepted.
    pub redecodes: u32,
    /// Stored-state repairs applied during this step (weight tiles restored
    /// plus KV positions rebuilt).
    pub repairs: u32,
}

/// Result of a generation run.
#[derive(Clone, Debug)]
pub struct GenerationOutput {
    /// The generated tokens (not including the prompt), in order.
    pub tokens: Vec<u32>,
    /// Wall-clock time of the prefill (first-token) step, nanoseconds.
    pub prefill_ns: u64,
    /// Wall-clock time of all decode steps, nanoseconds.
    pub decode_ns: u64,
    /// Per-step anomaly reports (one entry per accepted step, in order).
    pub steps: Vec<StepRecord>,
    /// Total token rollbacks performed.
    pub rollbacks: u32,
    /// Storm verdicts observed, including ones cleared by a rollback.
    pub storms: u32,
    /// A step exhausted its retry budget while still storming (only
    /// possible with an enabled [`RecoveryPolicy`]).
    pub recovery_failed: bool,
    /// Weight tiles re-verified by state taps (integrity scrubbing).
    pub scrubbed_tiles: u64,
    /// Weight tiles found corrupted and restored from the golden copy.
    pub weight_repairs: u64,
    /// KV-cache positions invalidated and rebuilt after a guard flagged
    /// them corrupted.
    pub kv_repairs: u64,
    /// [`RecoveryAction::RepairAndRetry`] rungs taken.
    pub repair_retries: u32,
}

impl GenerationOutput {
    /// Total stored-state repair events (weight tiles restored plus KV
    /// positions rebuilt).
    pub fn repairs(&self) -> u64 {
        self.weight_repairs + self.kv_repairs
    }
}

impl GenerationOutput {
    /// Fraction of total time spent generating the first token (the
    /// quantity of Fig. 10, here measured on the simulator).
    pub fn first_token_time_share(&self) -> f64 {
        let total = self.prefill_ns + self.decode_ns;
        if total == 0 {
            0.0
        } else {
            self.prefill_ns as f64 / total as f64
        }
    }
}

/// Per-generation KV cache (one entry per block).
pub struct KvCache {
    blocks: Vec<KvCacheBlock>,
}

impl KvCache {
    /// Empty cache for a model.
    pub fn new(config: &ModelConfig) -> Self {
        KvCache {
            blocks: (0..config.blocks)
                .map(|_| KvCacheBlock::new(config.hidden))
                .collect(),
        }
    }

    /// Number of cached positions (same in every block).
    pub fn len(&self) -> usize {
        self.blocks.first().map(|b| b.len()).unwrap_or(0)
    }

    /// True when nothing has been prefetched yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Roll every block back to `len` cached positions (token rollback).
    pub fn truncate(&mut self, len: usize) {
        for b in &mut self.blocks {
            b.truncate(len);
        }
    }

    /// Number of blocks in the cache.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// The cached K/V of block `i` (state taps address cache contents
    /// directly; the forward pass uses internal access).
    pub fn block(&self, i: usize) -> &KvCacheBlock {
        &self.blocks[i]
    }

    /// Mutable access to the cached K/V of block `i`.
    pub fn block_mut(&mut self, i: usize) -> &mut KvCacheBlock {
        &mut self.blocks[i]
    }
}

impl Model {
    /// Build a model from a configuration (constructs the synthetic
    /// checkpoint deterministically from `config.seed`). Panics on a
    /// structurally invalid configuration — see [`ModelConfig::validate`].
    pub fn new(config: ModelConfig) -> Model {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid model config: {e}"));
        let weights = ModelWeights::build(&config);
        let rope = (config.style == ArchStyle::LlamaStyle).then(|| RopeTable::build(&config));
        Model {
            config,
            weights,
            rope,
        }
    }

    /// The model's configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// The model's weights (read-only).
    pub fn weights(&self) -> &ModelWeights {
        &self.weights
    }

    /// Mutable access to the model's weights — the repair surface for the
    /// replica-rebuild path (restore corrupted tiles from a golden copy)
    /// and for fault drills that corrupt stored weights in place.
    pub fn weights_mut(&mut self) -> &mut ModelWeights {
        &mut self.weights
    }

    /// Precomputed RoPE table (Llama-style models; the sharded executor and
    /// the serving runtime replicate position handling on the driver).
    pub fn rope_table(&self) -> Option<&RopeTable> {
        self.rope.as_ref()
    }

    /// Embed token ids at absolute positions `start_pos..` using the given
    /// weight set, writing into a reusable buffer.
    pub(crate) fn embed_into(
        &self,
        weights: &ModelWeights,
        tokens: &[u32],
        start_pos: usize,
        x: &mut Matrix,
    ) {
        x.reset(tokens.len(), self.config.hidden);
        for (i, &t) in tokens.iter().enumerate() {
            let t = (t as usize) % self.config.vocab;
            let row = weights.embed.row(t);
            x.row_mut(i).copy_from_slice(row);
            if let Some(pos) = &weights.pos_embed {
                let p = (start_pos + i).min(pos.rows() - 1);
                for (v, &pe) in x.row_mut(i).iter_mut().zip(pos.row(p)) {
                    *v += pe;
                }
            }
        }
        x.quantize(self.config.dtype);
    }

    /// Run the decoder stack with an explicit weight set (the checkpoint
    /// weights normally; a trial-owned working copy when state taps are
    /// registered and stored-state corruption is possible). The final
    /// hidden states land in `scratch.hidden`.
    #[allow(clippy::too_many_arguments)]
    fn forward_with(
        &self,
        weights: &ModelWeights,
        tokens: &[u32],
        start_pos: usize,
        step: usize,
        cache: &mut KvCache,
        taps: &mut TapList<'_>,
        kernel: KernelPolicy,
        scratch: &mut DecodeScratch,
    ) {
        self.embed_into(weights, tokens, start_pos, &mut scratch.x);
        for (b, (bw, cb)) in weights
            .blocks
            .iter()
            .zip(cache.blocks.iter_mut())
            .enumerate()
        {
            block_forward_into(
                &self.config,
                bw,
                b,
                &mut scratch.x,
                start_pos,
                step,
                cb,
                taps,
                kernel,
                self.rope.as_ref(),
                &mut scratch.block,
            );
        }
        normed_into(
            &self.config,
            &weights.final_norm,
            &scratch.x,
            &mut scratch.hidden,
        );
    }

    /// Run the decoder stack for `tokens` at positions `start_pos..`,
    /// returning the hidden states `[n, hidden]` after the final norm.
    pub fn forward_step(
        &self,
        tokens: &[u32],
        start_pos: usize,
        step: usize,
        cache: &mut KvCache,
        taps: &mut TapList<'_>,
    ) -> Matrix {
        let mut scratch = DecodeScratch::new();
        self.forward_with(
            &self.weights,
            tokens,
            start_pos,
            step,
            cache,
            taps,
            KernelPolicy::Strict,
            &mut scratch,
        );
        scratch.hidden
    }

    /// Logits for a single hidden-state row, with an explicit weight set,
    /// into a reusable buffer.
    pub(crate) fn logits_into(&self, weights: &ModelWeights, hidden_row: &Matrix, out: &mut Matrix) {
        weights.lm_head.forward_into(hidden_row, self.config.dtype, out);
    }

    /// Logits for a single hidden-state row.
    pub fn logits(&self, hidden_row: &Matrix) -> Vec<f32> {
        let mut l = Matrix::zeros(0, 0);
        self.logits_into(&self.weights, hidden_row, &mut l);
        l.row(0).to_vec()
    }

    /// Rebuild cache positions `from..target` from the known token sequence
    /// (prompt plus already-accepted generated tokens): truncate the
    /// poisoned suffix and re-run the forward pass over it with no taps.
    /// Returns the number of positions rebuilt.
    #[allow(clippy::too_many_arguments)]
    fn rebuild_cache_range(
        &self,
        weights: &ModelWeights,
        prompt: &[u32],
        generated: &[u32],
        from: usize,
        target: usize,
        step: usize,
        cache: &mut KvCache,
        state: &mut StateTapList<'_>,
    ) -> u64 {
        debug_assert!(from < target);
        cache.truncate(from);
        state.notify_truncate(from);
        let seq: Vec<u32> = (from..target)
            .map(|i| {
                if i < prompt.len() {
                    prompt[i]
                } else {
                    generated[i - prompt.len()]
                }
            })
            .collect();
        let mut no_taps = TapList::new();
        // Cold path (runs only on fault recovery): fresh scratch is fine,
        // and repairs always run strict.
        let mut scratch = DecodeScratch::new();
        self.forward_with(
            weights,
            &seq,
            from,
            step,
            cache,
            &mut no_taps,
            KernelPolicy::Strict,
            &mut scratch,
        );
        (target - from) as u64
    }

    /// Greedy generation: prefill on `prompt`, then decode `gen_tokens`
    /// tokens, firing `taps` at every linear-layer output.
    ///
    /// Step numbering matches the paper: step 0 (the prefill) *is* the
    /// first-token generation; steps `1..gen_tokens` produce the following
    /// tokens.
    pub fn generate(
        &self,
        prompt: &[u32],
        gen_tokens: usize,
        taps: &mut TapList<'_>,
    ) -> GenerationOutput {
        self.generate_with_recovery(prompt, gen_tokens, taps, RecoveryPolicy::disabled())
    }

    /// [`Model::generate`] with an explicit [`KernelPolicy`].
    ///
    /// [`KernelPolicy::Fast`] enables the zero-skip shortcuts, which are
    /// bit-identical to strict on finite tensors but mask NaN/Inf behind
    /// exact zeros — valid **only** for generations known fault-free, such
    /// as the reference outputs a campaign compares its trials against.
    /// Every fault-injection trial must run strict (the default
    /// everywhere else).
    pub fn generate_with_policy(
        &self,
        prompt: &[u32],
        gen_tokens: usize,
        taps: &mut TapList<'_>,
        kernel: KernelPolicy,
    ) -> GenerationOutput {
        let mut state = StateTapList::new();
        self.generate_internal(
            prompt,
            gen_tokens,
            taps,
            &mut state,
            RecoveryPolicy::disabled(),
            kernel,
        )
    }

    /// [`Model::generate`] with KV-snapshot token rollback: when the merged
    /// end-of-step verdict is [`AnomalyVerdict::Storm`], the KV cache is
    /// truncated back to its pre-step length, taps are told to escalate via
    /// [`crate::hooks::LayerTap::on_rollback`], and the token is re-decoded —
    /// up to `policy.max_retries` times per step before the step is accepted
    /// anyway and the run marked [`GenerationOutput::recovery_failed`].
    ///
    /// The prefill (step 0) is never rolled back: there are no profiled
    /// bounds yet to re-decode under, so a poisoned profiling pass is
    /// handled by the bound-integrity guards instead.
    pub fn generate_with_recovery(
        &self,
        prompt: &[u32],
        gen_tokens: usize,
        taps: &mut TapList<'_>,
        policy: RecoveryPolicy,
    ) -> GenerationOutput {
        let mut state = StateTapList::new();
        self.generate_resilient(prompt, gen_tokens, taps, &mut state, policy)
    }

    /// [`Model::generate_with_recovery`] plus stored-state taps: before and
    /// after every forward pass the registered [`crate::state::StateTap`]s
    /// run over a trial-owned working copy of the weights and the live KV
    /// cache (injectors corrupt, scrubbers/guards verify and repair). When a
    /// guard flags poisoned cache positions, the engine invalidates them and
    /// re-decodes the affected token range from the known token sequence —
    /// the same rollback machinery as storm recovery. When the retry budget
    /// is exhausted and `policy.repair` is set, the engine takes one
    /// [`RecoveryAction::RepairAndRetry`] rung: a full state-repair sweep
    /// followed by one extra re-decode.
    ///
    /// With an empty `state` list this is byte-identical to
    /// [`Model::generate_with_recovery`]: no weight clone, no state passes.
    pub fn generate_resilient(
        &self,
        prompt: &[u32],
        gen_tokens: usize,
        taps: &mut TapList<'_>,
        state: &mut StateTapList<'_>,
        policy: RecoveryPolicy,
    ) -> GenerationOutput {
        // Fault campaigns run through this path: the kernel policy is
        // pinned strict so injected NaN/Inf propagate with IEEE fidelity.
        self.generate_internal(prompt, gen_tokens, taps, state, policy, KernelPolicy::Strict)
    }

    #[allow(clippy::too_many_arguments)]
    fn generate_internal(
        &self,
        prompt: &[u32],
        gen_tokens: usize,
        taps: &mut TapList<'_>,
        state: &mut StateTapList<'_>,
        policy: RecoveryPolicy,
        kernel: KernelPolicy,
    ) -> GenerationOutput {
        assert!(!prompt.is_empty(), "empty prompt");
        assert!(
            prompt.len() + gen_tokens <= self.config.max_seq,
            "sequence exceeds max_seq ({} + {} > {})",
            prompt.len(),
            gen_tokens,
            self.config.max_seq
        );
        // Stored-state corruption needs a mutable working copy of the
        // weights; without state taps the checkpoint is read directly and
        // the clone is skipped entirely.
        let has_state = !state.is_empty();
        let mut owned: Option<ModelWeights> = if has_state {
            Some(self.weights.clone())
        } else {
            None
        };
        let mut cache = KvCache::new(&self.config);
        let mut scratch = DecodeScratch::new();
        let mut tokens: Vec<u32> = Vec::with_capacity(gen_tokens);
        let mut steps = Vec::with_capacity(gen_tokens);
        let mut rollbacks = 0u32;
        let mut storms = 0u32;
        let mut recovery_failed = false;
        let mut scrubbed_tiles = 0u64;
        let mut weight_repairs = 0u64;
        let mut kv_repairs = 0u64;
        let mut repair_retries = 0u32;

        // Prefill == first-token generation (step 0).
        let t0 = Instant::now();
        let mut prefill_repairs = 0u32;
        if let Some(w) = owned.as_mut() {
            let rep = state.on_step_state(&mut StateCtx {
                step: 0,
                prompt_len: prompt.len(),
                weights: w,
                cache: &mut cache,
                golden: &self.weights,
                dtype: self.config.dtype,
            });
            scrubbed_tiles += rep.scrubbed_tiles;
            weight_repairs += rep.weight_repairs;
            prefill_repairs += rep.weight_repairs as u32;
            // The cache is empty before the prefill, so there is nothing a
            // guard could have flagged yet.
            debug_assert!(rep.kv_invalid_from.is_none());
        }
        let wref = owned.as_ref().unwrap_or(&self.weights);
        self.forward_with(wref, prompt, 0, 0, &mut cache, taps, kernel, &mut scratch);
        let report0 = taps.end_step(0);
        if let Some(w) = owned.as_mut() {
            state.on_step_end(&mut StateCtx {
                step: 0,
                prompt_len: prompt.len(),
                weights: w,
                cache: &mut cache,
                golden: &self.weights,
                dtype: self.config.dtype,
            });
        }
        if report0.verdict == AnomalyVerdict::Storm {
            storms += 1;
        }
        steps.push(StepRecord {
            step: 0,
            report: report0,
            redecodes: 0,
            repairs: prefill_repairs,
        });
        let last = scratch
            .hidden
            .slice_rows(scratch.hidden.rows() - 1, scratch.hidden.rows());
        let wref = owned.as_ref().unwrap_or(&self.weights);
        self.logits_into(wref, &last, &mut scratch.logits);
        let mut next = argmax(scratch.logits.row(0)) as u32;
        let prefill_ns = t0.elapsed().as_nanos() as u64;
        tokens.push(next);

        // Decode steps 1..gen_tokens.
        let t1 = Instant::now();
        for step in 1..gen_tokens {
            let pos = prompt.len() + step - 1;
            let snapshot = cache.len();
            let mut redecodes = 0u32;
            let mut step_repairs = 0u32;
            let mut repaired_this_step = false;
            loop {
                // Pre-forward state pass: injectors strike, scrubbers and
                // guards verify — corruption is caught before this step's
                // forward pass reads it.
                if let Some(w) = owned.as_mut() {
                    let rep = state.on_step_state(&mut StateCtx {
                        step,
                        prompt_len: prompt.len(),
                        weights: w,
                        cache: &mut cache,
                        golden: &self.weights,
                        dtype: self.config.dtype,
                    });
                    scrubbed_tiles += rep.scrubbed_tiles;
                    weight_repairs += rep.weight_repairs;
                    step_repairs += rep.weight_repairs as u32;
                    if let Some(p) = rep.kv_invalid_from {
                        let rebuilt = self.rebuild_cache_range(
                            w, prompt, &tokens, p, snapshot, step, &mut cache, state,
                        );
                        kv_repairs += rebuilt;
                        step_repairs += rebuilt as u32;
                    }
                }
                let wref = owned.as_ref().unwrap_or(&self.weights);
                self.forward_with(
                    wref, &[next], pos, step, &mut cache, taps, kernel, &mut scratch,
                );
                let report = taps.end_step(step);
                if let Some(w) = owned.as_mut() {
                    state.on_step_end(&mut StateCtx {
                        step,
                        prompt_len: prompt.len(),
                        weights: w,
                        cache: &mut cache,
                        golden: &self.weights,
                        dtype: self.config.dtype,
                    });
                }
                if report.verdict == AnomalyVerdict::Storm {
                    storms += 1;
                    if redecodes < policy.max_retries {
                        // RecoveryAction::EscalateAndRetry.
                        cache.truncate(snapshot);
                        state.notify_truncate(snapshot);
                        taps.notify_rollback(step, redecodes);
                        state.notify_rollback(step, redecodes);
                        rollbacks += 1;
                        redecodes += 1;
                        continue;
                    }
                    if policy.enabled() && policy.repair && has_state && !repaired_this_step {
                        // RecoveryAction::RepairAndRetry: a still-storming
                        // step after escalated re-decodes points at
                        // persistent stored-state corruption — sweep and
                        // repair everything, then re-decode once more.
                        cache.truncate(snapshot);
                        state.notify_truncate(snapshot);
                        taps.notify_rollback(step, redecodes);
                        state.notify_rollback(step, redecodes);
                        if let Some(w) = owned.as_mut() {
                            let rep = state.on_repair(&mut StateCtx {
                                step,
                                prompt_len: prompt.len(),
                                weights: w,
                                cache: &mut cache,
                                golden: &self.weights,
                                dtype: self.config.dtype,
                            });
                            scrubbed_tiles += rep.scrubbed_tiles;
                            weight_repairs += rep.weight_repairs;
                            step_repairs += rep.weight_repairs as u32;
                            if let Some(p) = rep.kv_invalid_from {
                                let p = p.min(snapshot);
                                if p < snapshot {
                                    let rebuilt = self.rebuild_cache_range(
                                        w, prompt, &tokens, p, snapshot, step, &mut cache,
                                        state,
                                    );
                                    kv_repairs += rebuilt;
                                    step_repairs += rebuilt as u32;
                                }
                            }
                        }
                        repair_retries += 1;
                        repaired_this_step = true;
                        rollbacks += 1;
                        redecodes += 1;
                        continue;
                    }
                    if policy.enabled() {
                        // Retry budget exhausted and the step still storms.
                        recovery_failed = true;
                    }
                }
                let wref = owned.as_ref().unwrap_or(&self.weights);
                self.logits_into(wref, &scratch.hidden, &mut scratch.logits);
                next = argmax(scratch.logits.row(0)) as u32;
                steps.push(StepRecord {
                    step,
                    report,
                    redecodes,
                    repairs: step_repairs,
                });
                break;
            }
            tokens.push(next);
        }
        let decode_ns = t1.elapsed().as_nanos() as u64;

        GenerationOutput {
            tokens,
            prefill_ns,
            decode_ns,
            steps,
            rollbacks,
            storms,
            recovery_failed,
            scrubbed_tiles,
            weight_repairs,
            kv_repairs,
            repair_retries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::hooks::{LayerTap, RecordingTap, TapCtx};

    #[test]
    fn generation_is_deterministic() {
        let model = Model::new(ModelConfig::tiny_opt());
        let prompt = [3u32, 14, 15, 92, 6];
        let mut taps = TapList::new();
        let a = model.generate(&prompt, 8, &mut taps);
        let b = model.generate(&prompt, 8, &mut taps);
        assert_eq!(a.tokens, b.tokens);
        assert_eq!(a.tokens.len(), 8);
        assert!(a.tokens.iter().all(|&t| (t as usize) < model.config().vocab));
    }

    #[test]
    fn different_prompts_generate_different_outputs() {
        let model = Model::new(ModelConfig::tiny_llama());
        let mut taps = TapList::new();
        let a = model.generate(&[1, 2, 3, 4], 10, &mut taps);
        let b = model.generate(&[9, 8, 7, 6], 10, &mut taps);
        assert_ne!(a.tokens, b.tokens);
    }

    #[test]
    fn taps_fire_for_every_block_layer_and_step() {
        let config = ModelConfig::tiny_opt();
        let n_layers = config.block_layers().len();
        let n_blocks = config.blocks;
        let model = Model::new(config);
        let mut rec = RecordingTap::all();
        {
            let mut taps = TapList::new();
            taps.push(&mut rec);
            let _ = model.generate(&[5, 6, 7], 4, &mut taps);
        }
        // 4 steps (1 prefill + 3 decodes) × blocks × layers.
        assert_eq!(rec.captures.len(), 4 * n_blocks * n_layers);
        // Prefill captures have prompt_len rows; decode captures one row.
        let (c0, data0) = &rec.captures[0];
        assert_eq!(c0.step, 0);
        assert_eq!(data0.len() % 3, 0);
        let last = rec.captures.last().unwrap();
        assert_eq!(last.0.step, 3);
    }

    #[test]
    fn tap_mutations_change_hidden_states() {
        // A tap that wipes V_PROJ outputs must change the computed hidden
        // states — proving taps intercept the real dataflow. (Generated
        // *tokens* may coincide: greedy decoding is robust by design.)
        struct Wipe;
        impl LayerTap for Wipe {
            fn on_output(&mut self, ctx: &TapCtx, data: &mut ft2_tensor::Matrix) {
                if ctx.point.layer == crate::config::LayerKind::VProj {
                    for v in data.as_mut_slice() {
                        *v = 0.0;
                    }
                }
            }
        }
        let model = Model::new(ModelConfig::tiny_opt());
        let prompt = [3u32, 14, 15, 92, 6, 33, 21];
        let mut clean_taps = TapList::new();
        let mut cache = KvCache::new(model.config());
        let clean = model.forward_step(&prompt, 0, 0, &mut cache, &mut clean_taps);

        let mut wipe = Wipe;
        let mut taps = TapList::new();
        taps.push(&mut wipe);
        let mut cache2 = KvCache::new(model.config());
        let wiped = model.forward_step(&prompt, 0, 0, &mut cache2, &mut taps);
        assert!(clean.max_abs_diff(&wiped) > 1e-4);
    }

    #[test]
    fn prefill_and_decode_timings_are_recorded() {
        let model = Model::new(ModelConfig::tiny_llama());
        let mut taps = TapList::new();
        let out = model.generate(&[1, 2, 3, 4, 5, 6, 7, 8], 16, &mut taps);
        assert!(out.prefill_ns > 0);
        assert!(out.decode_ns > 0);
        let share = out.first_token_time_share();
        assert!(share > 0.0 && share < 1.0);
    }

    #[test]
    #[should_panic]
    fn overlong_sequence_panics() {
        let model = Model::new(ModelConfig::tiny_opt());
        let mut taps = TapList::new();
        let prompt: Vec<u32> = (0..60).collect();
        let _ = model.generate(&prompt, 10, &mut taps);
    }

    /// Corrupts one decode step's V_PROJ output and storms until rolled
    /// back `heal_after` times — a stand-in for a transient fault plus a
    /// detector (the injector's `fired` flag gives real faults the same
    /// "clean on re-decode" shape).
    struct TransientStorm {
        target_step: usize,
        heal_after: u32,
        attempts: u32,
        stormed_this_step: bool,
    }

    impl TransientStorm {
        fn at(target_step: usize, heal_after: u32) -> Self {
            TransientStorm {
                target_step,
                heal_after,
                attempts: 0,
                stormed_this_step: false,
            }
        }
    }

    impl LayerTap for TransientStorm {
        fn on_output(&mut self, ctx: &TapCtx, data: &mut ft2_tensor::Matrix) {
            if ctx.step == self.target_step
                && ctx.point.layer == crate::config::LayerKind::VProj
                && ctx.point.block == 0
                && self.attempts < self.heal_after
            {
                for v in data.as_mut_slice() {
                    *v += 1.0e3;
                }
                self.stormed_this_step = true;
            }
        }
        fn end_step(&mut self, _step: usize) -> StepReport {
            let verdict = if self.stormed_this_step {
                AnomalyVerdict::Storm
            } else {
                AnomalyVerdict::Clean
            };
            self.stormed_this_step = false;
            StepReport {
                verdict,
                ..StepReport::default()
            }
        }
        fn on_rollback(&mut self, _step: usize, _attempt: u32) {
            self.attempts += 1;
        }
    }

    #[test]
    fn rollback_recovers_clean_tokens_after_transient_storm() {
        let model = Model::new(ModelConfig::tiny_llama());
        let prompt = [4u32, 9, 16, 25];
        let mut clean_taps = TapList::new();
        let clean = model.generate(&prompt, 8, &mut clean_taps);

        // Corrupt step 3 once; one rollback re-decodes it cleanly.
        let mut storm = TransientStorm::at(3, 1);
        let mut taps = TapList::new();
        taps.push(&mut storm);
        let out = model.generate_with_recovery(&prompt, 8, &mut taps, RecoveryPolicy::retries(2));
        assert_eq!(out.tokens, clean.tokens);
        assert_eq!(out.rollbacks, 1);
        assert_eq!(out.storms, 1);
        assert!(!out.recovery_failed);
        assert_eq!(out.steps.len(), 8);
        assert_eq!(out.steps[3].redecodes, 1);
        assert_eq!(out.steps[3].report.verdict, AnomalyVerdict::Clean);
    }

    #[test]
    fn disabled_policy_accepts_storming_step_without_failure_flag() {
        let model = Model::new(ModelConfig::tiny_llama());
        let prompt = [4u32, 9, 16, 25];
        let mut storm = TransientStorm::at(3, u32::MAX);
        let mut taps = TapList::new();
        taps.push(&mut storm);
        let out = model.generate_with_recovery(&prompt, 8, &mut taps, RecoveryPolicy::disabled());
        // The storm is recorded, but with rollback disabled the token is
        // accepted and the run is not marked recovery-failed.
        assert_eq!(out.rollbacks, 0);
        assert_eq!(out.storms, 1);
        assert!(!out.recovery_failed);
        assert_eq!(out.steps[3].report.verdict, AnomalyVerdict::Storm);
    }

    #[test]
    fn exhausted_retries_mark_recovery_failed() {
        let model = Model::new(ModelConfig::tiny_llama());
        let prompt = [4u32, 9, 16, 25];
        // Storms persist through every re-decode of step 2.
        let mut storm = TransientStorm::at(2, u32::MAX);
        let mut taps = TapList::new();
        taps.push(&mut storm);
        let out = model.generate_with_recovery(&prompt, 8, &mut taps, RecoveryPolicy::retries(2));
        assert_eq!(out.rollbacks, 2);
        assert_eq!(out.storms, 3); // initial attempt + two re-decodes
        assert!(out.recovery_failed);
        assert_eq!(out.steps[2].redecodes, 2);
        assert_eq!(out.steps[2].report.verdict, AnomalyVerdict::Storm);
    }

    #[test]
    fn recovery_disabled_matches_plain_generate() {
        let model = Model::new(ModelConfig::tiny_opt());
        let prompt = [3u32, 14, 15, 92, 6];
        let mut taps_a = TapList::new();
        let a = model.generate(&prompt, 8, &mut taps_a);
        let mut taps_b = TapList::new();
        let b =
            model.generate_with_recovery(&prompt, 8, &mut taps_b, RecoveryPolicy::disabled());
        assert_eq!(a.tokens, b.tokens);
        assert_eq!(a.rollbacks, 0);
        assert_eq!(b.steps.len(), 8);
        assert!(b.steps.iter().all(|s| s.report.verdict == AnomalyVerdict::Clean));
    }

    #[test]
    fn hidden_states_are_finite_in_clean_runs() {
        let model = Model::new(ModelConfig::tiny_llama());
        let mut cache = KvCache::new(model.config());
        let mut taps = TapList::new();
        let h = model.forward_step(&[1, 2, 3, 4, 5], 0, 0, &mut cache, &mut taps);
        assert!(!h.has_nan());
        assert!(h.as_slice().iter().all(|v| v.is_finite()));
    }
}
