//! The inference engine: embedding, decoder stack, LM head, and greedy
//! autoregressive generation with a KV cache.

use crate::attention::KvCacheBlock;
use crate::block::{block_forward, normed};
use crate::config::ModelConfig;
use crate::hooks::TapList;
use crate::weights::ModelWeights;
use ft2_tensor::{argmax, Matrix};
use std::time::Instant;

/// A model instance: configuration plus its synthetic checkpoint.
pub struct Model {
    config: ModelConfig,
    weights: ModelWeights,
}

/// Result of a generation run.
#[derive(Clone, Debug)]
pub struct GenerationOutput {
    /// The generated tokens (not including the prompt), in order.
    pub tokens: Vec<u32>,
    /// Wall-clock time of the prefill (first-token) step, nanoseconds.
    pub prefill_ns: u64,
    /// Wall-clock time of all decode steps, nanoseconds.
    pub decode_ns: u64,
}

impl GenerationOutput {
    /// Fraction of total time spent generating the first token (the
    /// quantity of Fig. 10, here measured on the simulator).
    pub fn first_token_time_share(&self) -> f64 {
        let total = self.prefill_ns + self.decode_ns;
        if total == 0 {
            0.0
        } else {
            self.prefill_ns as f64 / total as f64
        }
    }
}

/// Per-generation KV cache (one entry per block).
pub struct KvCache {
    blocks: Vec<KvCacheBlock>,
}

impl KvCache {
    /// Empty cache for a model.
    pub fn new(config: &ModelConfig) -> Self {
        KvCache {
            blocks: (0..config.blocks)
                .map(|_| KvCacheBlock::new(config.hidden))
                .collect(),
        }
    }

    /// Number of cached positions (same in every block).
    pub fn len(&self) -> usize {
        self.blocks.first().map(|b| b.len()).unwrap_or(0)
    }

    /// True when nothing has been prefetched yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Model {
    /// Build a model from a configuration (constructs the synthetic
    /// checkpoint deterministically from `config.seed`).
    pub fn new(config: ModelConfig) -> Model {
        let weights = ModelWeights::build(&config);
        Model { config, weights }
    }

    /// The model's configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// The model's weights (read-only).
    pub fn weights(&self) -> &ModelWeights {
        &self.weights
    }

    /// Embed token ids at absolute positions `start_pos..`.
    fn embed(&self, tokens: &[u32], start_pos: usize) -> Matrix {
        let hidden = self.config.hidden;
        let mut x = Matrix::zeros(tokens.len(), hidden);
        for (i, &t) in tokens.iter().enumerate() {
            let t = (t as usize) % self.config.vocab;
            let row = self.weights.embed.row(t);
            x.row_mut(i).copy_from_slice(row);
            if let Some(pos) = &self.weights.pos_embed {
                let p = (start_pos + i).min(pos.rows() - 1);
                for (v, &pe) in x.row_mut(i).iter_mut().zip(pos.row(p)) {
                    *v += pe;
                }
            }
        }
        x.quantize(self.config.dtype);
        x
    }

    /// Run the decoder stack for `tokens` at positions `start_pos..`,
    /// returning the hidden states `[n, hidden]` after the final norm.
    pub fn forward_step(
        &self,
        tokens: &[u32],
        start_pos: usize,
        step: usize,
        cache: &mut KvCache,
        taps: &mut TapList<'_>,
    ) -> Matrix {
        let mut x = self.embed(tokens, start_pos);
        for (b, (bw, cb)) in self
            .weights
            .blocks
            .iter()
            .zip(cache.blocks.iter_mut())
            .enumerate()
        {
            block_forward(&self.config, bw, b, &mut x, start_pos, step, cb, taps);
        }
        normed(&self.config, &self.weights.final_norm, &x)
    }

    /// Logits for a single hidden-state row.
    pub fn logits(&self, hidden_row: &Matrix) -> Vec<f32> {
        let l = self
            .weights
            .lm_head
            .forward(hidden_row, self.config.dtype);
        l.row(0).to_vec()
    }

    /// Greedy generation: prefill on `prompt`, then decode `gen_tokens`
    /// tokens, firing `taps` at every linear-layer output.
    ///
    /// Step numbering matches the paper: step 0 (the prefill) *is* the
    /// first-token generation; steps `1..gen_tokens` produce the following
    /// tokens.
    pub fn generate(
        &self,
        prompt: &[u32],
        gen_tokens: usize,
        taps: &mut TapList<'_>,
    ) -> GenerationOutput {
        assert!(!prompt.is_empty(), "empty prompt");
        assert!(
            prompt.len() + gen_tokens <= self.config.max_seq,
            "sequence exceeds max_seq ({} + {} > {})",
            prompt.len(),
            gen_tokens,
            self.config.max_seq
        );
        let mut cache = KvCache::new(&self.config);
        let mut tokens = Vec::with_capacity(gen_tokens);

        // Prefill == first-token generation (step 0).
        let t0 = Instant::now();
        let h = self.forward_step(prompt, 0, 0, &mut cache, taps);
        let last = h.slice_rows(h.rows() - 1, h.rows());
        let logits = self.logits(&last);
        let mut next = argmax(&logits) as u32;
        let prefill_ns = t0.elapsed().as_nanos() as u64;
        tokens.push(next);

        // Decode steps 1..gen_tokens.
        let t1 = Instant::now();
        for step in 1..gen_tokens {
            let pos = prompt.len() + step - 1;
            let h = self.forward_step(&[next], pos, step, &mut cache, taps);
            let logits = self.logits(&h);
            next = argmax(&logits) as u32;
            tokens.push(next);
        }
        let decode_ns = t1.elapsed().as_nanos() as u64;

        GenerationOutput {
            tokens,
            prefill_ns,
            decode_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::hooks::{LayerTap, RecordingTap, TapCtx};

    #[test]
    fn generation_is_deterministic() {
        let model = Model::new(ModelConfig::tiny_opt());
        let prompt = [3u32, 14, 15, 92, 6];
        let mut taps = TapList::new();
        let a = model.generate(&prompt, 8, &mut taps);
        let b = model.generate(&prompt, 8, &mut taps);
        assert_eq!(a.tokens, b.tokens);
        assert_eq!(a.tokens.len(), 8);
        assert!(a.tokens.iter().all(|&t| (t as usize) < model.config().vocab));
    }

    #[test]
    fn different_prompts_generate_different_outputs() {
        let model = Model::new(ModelConfig::tiny_llama());
        let mut taps = TapList::new();
        let a = model.generate(&[1, 2, 3, 4], 10, &mut taps);
        let b = model.generate(&[9, 8, 7, 6], 10, &mut taps);
        assert_ne!(a.tokens, b.tokens);
    }

    #[test]
    fn taps_fire_for_every_block_layer_and_step() {
        let config = ModelConfig::tiny_opt();
        let n_layers = config.block_layers().len();
        let n_blocks = config.blocks;
        let model = Model::new(config);
        let mut rec = RecordingTap::all();
        {
            let mut taps = TapList::new();
            taps.push(&mut rec);
            let _ = model.generate(&[5, 6, 7], 4, &mut taps);
        }
        // 4 steps (1 prefill + 3 decodes) × blocks × layers.
        assert_eq!(rec.captures.len(), 4 * n_blocks * n_layers);
        // Prefill captures have prompt_len rows; decode captures one row.
        let (c0, data0) = &rec.captures[0];
        assert_eq!(c0.step, 0);
        assert_eq!(data0.len() % 3, 0);
        let last = rec.captures.last().unwrap();
        assert_eq!(last.0.step, 3);
    }

    #[test]
    fn tap_mutations_change_hidden_states() {
        // A tap that wipes V_PROJ outputs must change the computed hidden
        // states — proving taps intercept the real dataflow. (Generated
        // *tokens* may coincide: greedy decoding is robust by design.)
        struct Wipe;
        impl LayerTap for Wipe {
            fn on_output(&mut self, ctx: &TapCtx, data: &mut ft2_tensor::Matrix) {
                if ctx.point.layer == crate::config::LayerKind::VProj {
                    for v in data.as_mut_slice() {
                        *v = 0.0;
                    }
                }
            }
        }
        let model = Model::new(ModelConfig::tiny_opt());
        let prompt = [3u32, 14, 15, 92, 6, 33, 21];
        let mut clean_taps = TapList::new();
        let mut cache = KvCache::new(model.config());
        let clean = model.forward_step(&prompt, 0, 0, &mut cache, &mut clean_taps);

        let mut wipe = Wipe;
        let mut taps = TapList::new();
        taps.push(&mut wipe);
        let mut cache2 = KvCache::new(model.config());
        let wiped = model.forward_step(&prompt, 0, 0, &mut cache2, &mut taps);
        assert!(clean.max_abs_diff(&wiped) > 1e-4);
    }

    #[test]
    fn prefill_and_decode_timings_are_recorded() {
        let model = Model::new(ModelConfig::tiny_llama());
        let mut taps = TapList::new();
        let out = model.generate(&[1, 2, 3, 4, 5, 6, 7, 8], 16, &mut taps);
        assert!(out.prefill_ns > 0);
        assert!(out.decode_ns > 0);
        let share = out.first_token_time_share();
        assert!(share > 0.0 && share < 1.0);
    }

    #[test]
    #[should_panic]
    fn overlong_sequence_panics() {
        let model = Model::new(ModelConfig::tiny_opt());
        let mut taps = TapList::new();
        let prompt: Vec<u32> = (0..60).collect();
        let _ = model.generate(&prompt, 10, &mut taps);
    }

    #[test]
    fn hidden_states_are_finite_in_clean_runs() {
        let model = Model::new(ModelConfig::tiny_llama());
        let mut cache = KvCache::new(model.config());
        let mut taps = TapList::new();
        let h = model.forward_step(&[1, 2, 3, 4, 5], 0, 0, &mut cache, &mut taps);
        assert!(!h.has_nan());
        assert!(h.as_slice().iter().all(|v| v.is_finite()));
    }
}
