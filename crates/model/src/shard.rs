//! Sharded (tensor-parallel) execution with fault-isolation domains.
//!
//! This module partitions a model's block linears across `N` logical
//! shards — each standing in for one GPU of a tensor-parallel replica —
//! and executes them on [`WorkStealingPool`] workers while the driver
//! thread keeps everything a real TP rank replicates (embeddings, norms,
//! attention softmax, the LM head). The partition map is the Megatron
//! layout:
//!
//! * **Column-sharded** (`K/Q/V_PROJ` by head range, `FC1`/`GATE`/`UP` by
//!   ffn range): each shard owns a slice of *output* features and computes
//!   its slice over the full input — per-element arithmetic is identical
//!   to the unsharded kernel, so the gathered result is bit-exact for any
//!   shard count.
//! * **Row-sharded** (`OUT_PROJ` by head range, `FC2`/`DOWN` by ffn
//!   range): each shard owns a slice of *input* features and produces a
//!   partial product; the partials meet at the all-reduce seam
//!   ([`ft2_tensor::reduce_seam_into`]), which accumulates in `f64` so the
//!   reduced value is stable across shard counts (see `ft2-tensor::seam`).
//!
//! Every shard is its own **failure domain**. Shard-scoped faults surface
//! in three shapes — a worker panic (crash), a stale heartbeat (hang,
//! cancelled by [`HeartbeatMonitor`] within the heartbeat interval rather
//! than the trial deadline), or an anomalous partial (weight/activation
//! corruption) — and are handled by a shard-granular recovery ladder:
//!
//! 1. **Re-execute** the failed shard's partial GEMM
//!    ([`RecoveryPolicy::shard_reexec`] attempts): transient faults are
//!    gone on retry.
//! 2. **Repair**: run the registered [`ShardTap`] repair sweep (a
//!    scrubber restores corrupted weight tiles from its golden copy), then
//!    re-execute — the persistent-fault rung.
//! 3. **Degrade** ([`RecoveryPolicy::shard_degrade`]): evict the dead
//!    shard, re-partition the checkpoint onto the survivors, roll the step
//!    back, and keep generating. Availability is preserved at the cost of
//!    bounded token drift (the re-partitioned reduce seam sums in a
//!    different slice order), reported as a degrade event — never
//!    silently.
//!
//! Without the degrade rung, an unrecoverable shard failure ends the
//! generation with [`ShardedGeneration::failed`] set — a detected,
//! shard-scoped DUE.

use crate::attention::apply_rope_with;
use crate::block::{normed_at_into, normed_into};
use crate::config::{Activation, ArchStyle, LayerKind, ModelConfig};
use crate::engine::{KvCache, Model, RecoveryPolicy};
use crate::scratch::{BlockScratch, DecodeScratch};
use crate::weights::{Linear, ModelWeights};
use ft2_parallel::{lock_clean, HeartbeatMonitor, ShardHeartbeat, WorkStealingPool};
use ft2_tensor::{
    add_inplace, argmax, dot, gelu_inplace, matmul_transb_cols_f64, matmul_transb_into,
    reduce_seam_into, relu_inplace, silu_inplace, softmax_rows, Matrix,
};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// A partial whose magnitude exceeds this (or is non-finite) is flagged
/// anomalous by the post-gather check. Healthy activations on the
/// simulator's checkpoints stay below ~1e3; injected corruption scales
/// values by ≥1e6, so the two populations are cleanly separable.
const PARTIAL_ANOMALY_ABS: f64 = 1e8;

/// Fallback timeout for an injected hang: if the heartbeat monitor never
/// cancels the shard (it always should), the spinning task aborts itself
/// after this long so a test can never deadlock the pool.
const HANG_FALLBACK: Duration = Duration::from_secs(5);

/// A half-open index range `[start, end)` of heads or ffn features.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// First index of the range.
    pub start: usize,
    /// One past the last index.
    pub end: usize,
}

impl Span {
    /// Number of indices covered.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the span covers nothing (a shard count larger than the
    /// sharded dimension leaves trailing shards empty).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Split `total` indices into `parts` contiguous spans whose lengths
/// differ by at most one (the first `total % parts` spans get the extra
/// element). `parts > total` yields trailing empty spans.
pub fn balanced_spans(total: usize, parts: usize) -> Vec<Span> {
    let parts = parts.max(1);
    let base = total / parts;
    let extra = total % parts;
    let mut spans = Vec::with_capacity(parts);
    let mut lo = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        spans.push(Span {
            start: lo,
            end: lo + len,
        });
        lo += len;
    }
    spans
}

/// The partition map of one shard count: which heads and which ffn
/// features each shard owns.
#[derive(Clone, Debug)]
pub struct ShardPlan {
    /// Number of shards.
    pub shards: usize,
    /// Attention-head span per shard (Q/K/V outputs, OUT_PROJ inputs).
    pub head_spans: Vec<Span>,
    /// Ffn-feature span per shard (FC1/GATE/UP outputs, FC2/DOWN inputs).
    pub ffn_spans: Vec<Span>,
    /// Per-head feature width.
    pub head_dim: usize,
}

impl ShardPlan {
    /// Partition map for `n` shards of a model configuration. Head counts
    /// that do not divide `n` are balanced (spans differ by one head);
    /// `n` larger than the head count leaves trailing shards with no
    /// attention slice (they still carry an ffn slice when possible).
    pub fn new(config: &ModelConfig, n: usize) -> ShardPlan {
        let n = n.max(1);
        ShardPlan {
            shards: n,
            head_spans: balanced_spans(config.heads, n),
            ffn_spans: balanced_spans(config.ffn, n),
            head_dim: config.head_dim(),
        }
    }

    /// The hidden-feature columns shard `s` owns (its head span scaled by
    /// `head_dim`): output rows of its Q/K/V slices and input columns of
    /// its OUT_PROJ slice.
    pub fn col_span(&self, s: usize) -> Span {
        Span {
            start: self.head_spans[s].start * self.head_dim,
            end: self.head_spans[s].end * self.head_dim,
        }
    }

    /// Slice a full weight set into per-shard weights (deterministic,
    /// bit-preserving copies).
    pub fn partition(&self, config: &ModelConfig, weights: &ModelWeights) -> Vec<ShardWeights> {
        (0..self.shards)
            .map(|s| {
                let col = self.col_span(s);
                let ffn = self.ffn_spans[s];
                let blocks = weights
                    .blocks
                    .iter()
                    .map(|bw| {
                        let fc = bw.fc.as_ref().map(|(fc1, fc2)| {
                            (rows_slice(fc1, ffn), cols_slice(fc2, ffn, s == 0))
                        });
                        let gated = bw.gated.as_ref().map(|(gate, up, down)| {
                            (
                                rows_slice(gate, ffn),
                                rows_slice(up, ffn),
                                cols_slice(down, ffn, s == 0),
                            )
                        });
                        ShardBlockWeights {
                            k_proj: rows_slice(&bw.k_proj, col),
                            q_proj: rows_slice(&bw.q_proj, col),
                            v_proj: rows_slice(&bw.v_proj, col),
                            out_proj: cols_slice(&bw.out_proj, col, s == 0),
                            fc,
                            gated,
                        }
                    })
                    .collect();
                let _ = config;
                ShardWeights {
                    shard: s,
                    head_span: self.head_spans[s],
                    ffn_span: ffn,
                    blocks,
                }
            })
            .collect()
    }

    /// Write the sharded block linears back into `target` — the inverse of
    /// [`ShardPlan::partition`]. Only block linears are touched (norms,
    /// embeddings and the LM head are replicated on the driver and never
    /// sharded). Row-sharded biases are restored from shard 0, which is
    /// the shard that keeps them.
    pub fn reassemble_into(&self, shards: &[ShardWeights], target: &mut ModelWeights) {
        assert_eq!(shards.len(), self.shards, "shard count mismatch");
        for (s, sw) in shards.iter().enumerate() {
            let col = self.col_span(s);
            let ffn = self.ffn_spans[s];
            for (bw, sb) in target.blocks.iter_mut().zip(&sw.blocks) {
                write_rows(&mut bw.k_proj, &sb.k_proj, col);
                write_rows(&mut bw.q_proj, &sb.q_proj, col);
                write_rows(&mut bw.v_proj, &sb.v_proj, col);
                write_cols(&mut bw.out_proj, &sb.out_proj, col, s == 0);
                if let (Some((fc1, fc2)), Some((s1, s2))) = (bw.fc.as_mut(), sb.fc.as_ref()) {
                    write_rows(fc1, s1, ffn);
                    write_cols(fc2, s2, ffn, s == 0);
                }
                if let (Some((g, u, d)), Some((sg, su, sd))) =
                    (bw.gated.as_mut(), sb.gated.as_ref())
                {
                    write_rows(g, sg, ffn);
                    write_rows(u, su, ffn);
                    write_cols(d, sd, ffn, s == 0);
                }
            }
        }
    }
}

/// Output-row slice of a linear (column sharding): the shard owns output
/// features `span` with their bias entries.
fn rows_slice(lin: &Linear, span: Span) -> Linear {
    Linear {
        weight: Matrix::from_fn(span.len(), lin.weight.cols(), |r, c| {
            lin.weight.get(span.start + r, c)
        }),
        bias: lin
            .bias
            .as_ref()
            .map(|b| b[span.start..span.end].to_vec()),
    }
}

/// Input-column slice of a linear (row sharding): the shard owns input
/// features `span`; the bias is applied once after the reduce seam, so
/// only shard 0 keeps it.
fn cols_slice(lin: &Linear, span: Span, keep_bias: bool) -> Linear {
    Linear {
        weight: Matrix::from_fn(lin.weight.rows(), span.len(), |r, c| {
            lin.weight.get(r, span.start + c)
        }),
        bias: if keep_bias { lin.bias.clone() } else { None },
    }
}

fn write_rows(target: &mut Linear, shard: &Linear, span: Span) {
    for r in 0..span.len() {
        target
            .weight
            .row_mut(span.start + r)
            .copy_from_slice(shard.weight.row(r));
    }
    if let (Some(tb), Some(sb)) = (target.bias.as_mut(), shard.bias.as_ref()) {
        tb[span.start..span.end].copy_from_slice(sb);
    }
}

fn write_cols(target: &mut Linear, shard: &Linear, span: Span, restore_bias: bool) {
    for r in 0..target.weight.rows() {
        for c in 0..span.len() {
            target.weight.set(r, span.start + c, shard.weight.get(r, c));
        }
    }
    if restore_bias {
        if let (Some(tb), Some(sb)) = (target.bias.as_mut(), shard.bias.as_ref()) {
            tb.copy_from_slice(sb);
        }
    }
}

/// One decoder block's weight slices on one shard.
#[derive(Clone, Debug)]
pub struct ShardBlockWeights {
    /// Key-projection output-row slice.
    pub k_proj: Linear,
    /// Query-projection output-row slice.
    pub q_proj: Linear,
    /// Value-projection output-row slice.
    pub v_proj: Linear,
    /// Attention-output input-column slice (bias on shard 0 only).
    pub out_proj: Linear,
    /// OPT-style MLP slices: (FC1 rows, FC2 columns).
    pub fc: Option<(Linear, Linear)>,
    /// Llama-style MLP slices: (gate rows, up rows, down columns).
    pub gated: Option<(Linear, Linear, Linear)>,
}

impl ShardBlockWeights {
    /// The slice of the given layer kind, if this architecture has it.
    pub fn layer(&self, kind: LayerKind) -> Option<&Linear> {
        match kind {
            LayerKind::KProj => Some(&self.k_proj),
            LayerKind::QProj => Some(&self.q_proj),
            LayerKind::VProj => Some(&self.v_proj),
            LayerKind::OutProj => Some(&self.out_proj),
            LayerKind::Fc1 => self.fc.as_ref().map(|(a, _)| a),
            LayerKind::Fc2 => self.fc.as_ref().map(|(_, b)| b),
            LayerKind::GateProj => self.gated.as_ref().map(|(g, _, _)| g),
            LayerKind::UpProj => self.gated.as_ref().map(|(_, u, _)| u),
            LayerKind::DownProj => self.gated.as_ref().map(|(_, _, d)| d),
        }
    }

    /// Mutable access to the slice of the given layer kind (fault
    /// injection and integrity repair).
    pub fn layer_mut(&mut self, kind: LayerKind) -> Option<&mut Linear> {
        match kind {
            LayerKind::KProj => Some(&mut self.k_proj),
            LayerKind::QProj => Some(&mut self.q_proj),
            LayerKind::VProj => Some(&mut self.v_proj),
            LayerKind::OutProj => Some(&mut self.out_proj),
            LayerKind::Fc1 => self.fc.as_mut().map(|(a, _)| a),
            LayerKind::Fc2 => self.fc.as_mut().map(|(_, b)| b),
            LayerKind::GateProj => self.gated.as_mut().map(|(g, _, _)| g),
            LayerKind::UpProj => self.gated.as_mut().map(|(_, u, _)| u),
            LayerKind::DownProj => self.gated.as_mut().map(|(_, _, d)| d),
        }
    }
}

/// One shard's complete weight slices.
#[derive(Clone, Debug)]
pub struct ShardWeights {
    /// Shard index under the current partition.
    pub shard: usize,
    /// Attention heads this shard owns.
    pub head_span: Span,
    /// Ffn features this shard owns.
    pub ffn_span: Span,
    /// Per-block weight slices.
    pub blocks: Vec<ShardBlockWeights>,
}

/// What a worker task is told to do for one partial — queried from the
/// taps before each dispatch, which is how shard-scoped crash and hang
/// faults enter the executor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TaskDirective {
    /// Execute the partial normally.
    Proceed,
    /// Panic immediately — an injected shard crash (XID-style fatal
    /// error).
    Crash,
    /// Stop beating and spin until the heartbeat monitor cancels the
    /// shard — an injected shard hang.
    Hang,
}

/// Where in the forward pass a partial was produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardPartialCtx {
    /// Generation step (0 = prefill).
    pub step: usize,
    /// Decoder block index.
    pub block: usize,
    /// Linear layer the partial belongs to.
    pub layer: LayerKind,
    /// Shard that produced it.
    pub shard: usize,
}

/// Mutable view of one shard's partial, handed to [`ShardTap::on_partial`]
/// (activation-level fault injection mutates it in place).
pub enum PartialMut<'a> {
    /// Column-sharded output slice `[n, span]`.
    F32(&'a mut Matrix),
    /// Row-sharded `f64` partial, length `n × out`.
    F64(&'a mut [f64]),
}

/// Integrity work performed by a tap during a sweep.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStateReport {
    /// Weight tiles whose checksum was re-verified.
    pub scrubbed_tiles: u64,
    /// Weight tiles found corrupted and restored from the golden copy.
    pub repaired_tiles: u64,
}

impl ShardStateReport {
    /// Accumulate another report into this one.
    pub fn merge(&mut self, other: ShardStateReport) {
        self.scrubbed_tiles += other.scrubbed_tiles;
        self.repaired_tiles += other.repaired_tiles;
    }
}

/// Scope of one repair rung. A shard's partial GEMM reads exactly one
/// `(block, layer)` weight slice, so an anomalous partial implicates
/// exactly that slice on the suspect shards — stored-state repair only
/// needs to verify those tiles, which is what keeps the rung orders of
/// magnitude cheaper than a full restart.
#[derive(Clone, Copy, Debug)]
pub struct RepairScope<'a> {
    /// Shards whose partials failed (empty = every shard is suspect).
    pub suspects: &'a [usize],
    /// Decoder block of the failing GEMMs.
    pub block: usize,
    /// The weight slice the failing GEMMs were reading.
    pub layer: LayerKind,
}

/// Observer/actor interface of the sharded executor. Fault injectors and
/// integrity scrubbers implement this; `ft2-model` defines only the
/// mechanism so upper crates can supply policy without a dependency
/// cycle.
pub trait ShardTap {
    /// Called before each step's forward pass with mutable access to every
    /// shard's weights (injectors corrupt, scrubbers verify/repair).
    fn on_step_start(&mut self, step: usize, shards: &mut [ShardWeights]) -> ShardStateReport {
        let _ = (step, shards);
        ShardStateReport::default()
    }

    /// Queried immediately before dispatching one shard's partial GEMM.
    fn directive(
        &mut self,
        step: usize,
        block: usize,
        layer: LayerKind,
        shard: usize,
    ) -> TaskDirective {
        let _ = (step, block, layer, shard);
        TaskDirective::Proceed
    }

    /// Called with each successfully computed partial (before the anomaly
    /// check and the gather), with mutable access for injection.
    fn on_partial(&mut self, ctx: &ShardPartialCtx, data: PartialMut<'_>) {
        let _ = (ctx, data);
    }

    /// The repair rung: verify and restore the weight slice implicated by
    /// the failing GEMMs (see [`RepairScope`]). Scoping the sweep to the
    /// failing isolation domains' implicated slice is what keeps a repair
    /// orders of magnitude cheaper than a full restart. Returns the work
    /// done.
    fn on_repair(&mut self, scope: &RepairScope<'_>, shards: &mut [ShardWeights]) -> ShardStateReport {
        let _ = (scope, shards);
        ShardStateReport::default()
    }

    /// Called after each step's forward pass (accepted or aborted).
    fn on_step_end(&mut self, step: usize) {
        let _ = step;
    }

    /// Called after a degrade re-partition with the survivors' fresh
    /// weights. Scrubbers re-baseline; injectors targeting the evicted
    /// shard go inert (the faulty "GPU" left the replica).
    fn on_repartition(&mut self, shards: &[ShardWeights]) {
        let _ = shards;
    }
}

/// An ordered list of [`ShardTap`]s sharing the executor's hook points.
#[derive(Default)]
pub struct ShardTapList<'a> {
    taps: Vec<&'a mut dyn ShardTap>,
}

impl<'a> ShardTapList<'a> {
    /// Empty list.
    pub fn new() -> Self {
        ShardTapList::default()
    }

    /// Append a tap (fires after the ones already registered).
    pub fn push(&mut self, tap: &'a mut dyn ShardTap) {
        self.taps.push(tap);
    }

    /// True when no taps are registered.
    pub fn is_empty(&self) -> bool {
        self.taps.is_empty()
    }

    fn on_step_start(&mut self, step: usize, shards: &mut [ShardWeights]) -> ShardStateReport {
        let mut merged = ShardStateReport::default();
        for t in &mut self.taps {
            merged.merge(t.on_step_start(step, shards));
        }
        merged
    }

    fn directive(
        &mut self,
        step: usize,
        block: usize,
        layer: LayerKind,
        shard: usize,
    ) -> TaskDirective {
        for t in &mut self.taps {
            let d = t.directive(step, block, layer, shard);
            if d != TaskDirective::Proceed {
                return d;
            }
        }
        TaskDirective::Proceed
    }

    fn on_partial(&mut self, ctx: &ShardPartialCtx, data: &mut PartialMut<'_>) {
        for t in &mut self.taps {
            match data {
                PartialMut::F32(m) => t.on_partial(ctx, PartialMut::F32(m)),
                PartialMut::F64(p) => t.on_partial(ctx, PartialMut::F64(p)),
            }
        }
    }

    fn on_repair(&mut self, scope: &RepairScope<'_>, shards: &mut [ShardWeights]) -> ShardStateReport {
        let mut merged = ShardStateReport::default();
        for t in &mut self.taps {
            merged.merge(t.on_repair(scope, shards));
        }
        merged
    }

    fn on_step_end(&mut self, step: usize) {
        for t in &mut self.taps {
            t.on_step_end(step);
        }
    }

    /// Notify every tap of a re-partition (public so callers that
    /// re-partition out-of-band — e.g. a full-restart baseline — can keep
    /// their taps coherent).
    pub fn on_repartition(&mut self, shards: &[ShardWeights]) {
        for t in &mut self.taps {
            t.on_repartition(shards);
        }
    }
}

/// How a shard failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardIncidentKind {
    /// The worker task panicked.
    Crash,
    /// The heartbeat monitor cancelled a stale shard.
    Hang,
    /// The shard's partial failed the anomaly check after the re-execute
    /// and repair rungs.
    Anomaly,
}

impl ShardIncidentKind {
    /// Stable lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            ShardIncidentKind::Crash => "crash",
            ShardIncidentKind::Hang => "hang",
            ShardIncidentKind::Anomaly => "anomaly",
        }
    }
}

/// A shard failure the per-linear ladder could not absorb, escalated to
/// the step loop (degrade or fail).
#[derive(Clone, Copy, Debug)]
struct ShardIncident {
    shard: usize,
    kind: ShardIncidentKind,
}

/// A degrade event: one shard evicted, the step re-run on the survivors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DegradeEvent {
    /// Step during which the shard was evicted.
    pub step: usize,
    /// Shard index (under the partition in force at the time).
    pub shard: usize,
    /// Failure that triggered the eviction.
    pub kind: ShardIncidentKind,
}

/// Terminal shard failure of a generation that could not degrade.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardFailure {
    /// Step at which the generation stopped.
    pub step: usize,
    /// Failed shard.
    pub shard: usize,
    /// Failure kind.
    pub kind: ShardIncidentKind,
}

/// Result of one sharded generation.
#[derive(Clone, Debug)]
pub struct ShardedGeneration {
    /// Generated tokens (all `gen_tokens` of them unless
    /// [`ShardedGeneration::failed`] is set).
    pub tokens: Vec<u32>,
    /// Shards alive at the end of the generation.
    pub shards: usize,
    /// Shards evicted by the degrade rung.
    pub shards_lost: u32,
    /// One entry per eviction, in order.
    pub degrade_events: Vec<DegradeEvent>,
    /// Shard partial re-executions (the transient-fault rung).
    pub shard_retries: u32,
    /// Anomalous partials detected (including ones cleared by a retry or
    /// repair).
    pub storms: u32,
    /// Repair rungs taken (full scrub-and-restore sweeps).
    pub repair_rungs: u32,
    /// Weight tiles re-verified by scrubbing taps.
    pub scrubbed_tiles: u64,
    /// Weight tiles found corrupted and restored.
    pub tiles_repaired: u64,
    /// Wall-clock nanoseconds spent in repair sweeps plus their
    /// re-executions (the "shard repair time" the harness compares against
    /// a full restart).
    pub repair_ns: u64,
    /// Set when the generation ended early on an unrecoverable shard
    /// failure (a detected, shard-scoped DUE).
    pub failed: Option<ShardFailure>,
    /// Wall-clock time of the prefill step, nanoseconds.
    pub prefill_ns: u64,
    /// Wall-clock time of all decode steps, nanoseconds.
    pub decode_ns: u64,
}

impl ShardedGeneration {
    /// True when every requested token was produced.
    pub fn completed(&self) -> bool {
        self.failed.is_none()
    }
}

#[derive(Default)]
struct RunStats {
    shard_retries: u32,
    storms: u32,
    repair_rungs: u32,
    scrubbed_tiles: u64,
    tiles_repaired: u64,
    repair_ns: u64,
    shards_lost: u32,
    degrade_events: Vec<DegradeEvent>,
}

/// Which side of the partition a layer lives on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SeamMode {
    /// Output features sharded; gather is a concatenation.
    Col,
    /// Input features sharded; gather is the f64 all-reduce seam.
    Row,
}

fn seam_mode(layer: LayerKind) -> SeamMode {
    match layer {
        LayerKind::KProj
        | LayerKind::QProj
        | LayerKind::VProj
        | LayerKind::Fc1
        | LayerKind::GateProj
        | LayerKind::UpProj => SeamMode::Col,
        LayerKind::OutProj | LayerKind::Fc2 | LayerKind::DownProj => SeamMode::Row,
    }
}

/// Per-shard output buffers, behind mutexes so pool workers can write
/// them through a shared reference (a shard's buffer is only ever touched
/// by its own task within one dispatch).
#[derive(Default)]
struct ShardBuf {
    dense: Mutex<Matrix>,
    partial: Mutex<Vec<f64>>,
}

/// A model partitioned across `N` logical shards, executable on a worker
/// pool with shard-granular fault isolation and recovery.
pub struct ShardedModel<'m> {
    model: &'m Model,
    initial_shards: usize,
    plan: ShardPlan,
    weights: Vec<ShardWeights>,
    bufs: Vec<ShardBuf>,
}

impl<'m> ShardedModel<'m> {
    /// Partition `model` across `n` shards (clamped to at least 1).
    pub fn new(model: &'m Model, n: usize) -> ShardedModel<'m> {
        let n = n.max(1);
        let plan = ShardPlan::new(model.config(), n);
        let weights = plan.partition(model.config(), model.weights());
        let bufs = (0..n).map(|_| ShardBuf::default()).collect();
        ShardedModel {
            model,
            initial_shards: n,
            plan,
            weights,
            bufs,
        }
    }

    /// The underlying (golden) model.
    pub fn model(&self) -> &'m Model {
        self.model
    }

    /// Current partition map.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Current per-shard weights (scrubbers baseline their golden copies
    /// and checksums from this).
    pub fn shards(&self) -> &[ShardWeights] {
        &self.weights
    }

    /// Shards alive under the current partition.
    pub fn alive(&self) -> usize {
        self.weights.len()
    }

    /// Restore the initial partition from the golden checkpoint (also run
    /// at the start of every generation, so injected weight corruption
    /// never leaks across generations).
    pub fn reset(&mut self) {
        self.plan = ShardPlan::new(self.model.config(), self.initial_shards);
        self.repartition();
    }

    fn repartition(&mut self) {
        self.weights = self.plan.partition(self.model.config(), self.model.weights());
        self.bufs = (0..self.plan.shards).map(|_| ShardBuf::default()).collect();
    }

    fn degrade(&mut self) {
        let survivors = self.weights.len().saturating_sub(1).max(1);
        self.plan = ShardPlan::new(self.model.config(), survivors);
        self.repartition();
    }

    /// The feature span shard `s` owns for `layer`: output rows under
    /// column sharding, input columns under row sharding.
    fn feature_span(&self, s: usize, layer: LayerKind) -> Span {
        match layer {
            LayerKind::KProj | LayerKind::QProj | LayerKind::VProj | LayerKind::OutProj => {
                self.plan.col_span(s)
            }
            _ => self.plan.ffn_spans[s],
        }
    }

    /// Dispatch the partial GEMMs of `ids` for one linear and return the
    /// shards that failed (crash or hang), in discovery order.
    #[allow(clippy::too_many_arguments)]
    fn exec(
        &self,
        pool: &WorkStealingPool,
        hb: &ShardHeartbeat,
        ids: &[usize],
        directives: &[TaskDirective],
        block: usize,
        layer: LayerKind,
        x: &Matrix,
    ) -> Vec<(usize, ShardIncidentKind)> {
        let mode = seam_mode(layer);
        let col_los: Vec<usize> = ids
            .iter()
            .map(|&s| self.feature_span(s, layer).start)
            .collect();
        let weights = &self.weights;
        let bufs = &self.bufs;
        let panics = pool.try_run(ids.len(), 1, |j| {
            let s = ids[j];
            hb.begin(s);
            match directives[j] {
                TaskDirective::Crash => panic!("injected shard crash"),
                TaskDirective::Hang => {
                    let t0 = Instant::now();
                    loop {
                        if hb.is_cancelled(s) || t0.elapsed() > HANG_FALLBACK {
                            panic!("shard hang isolated by heartbeat");
                        }
                        std::thread::sleep(Duration::from_micros(200));
                    }
                }
                TaskDirective::Proceed => {}
            }
            let lin = weights[s].blocks[block]
                .layer(layer)
                .expect("sharded layer present for this architecture");
            match mode {
                SeamMode::Col => {
                    let mut buf = lock_clean(&bufs[s].dense);
                    matmul_transb_into(x, &lin.weight, &mut buf);
                }
                SeamMode::Row => {
                    let mut part = lock_clean(&bufs[s].partial);
                    matmul_transb_cols_f64(x, &lin.weight, col_los[j], &mut part);
                }
            }
            hb.end(s);
        });
        let failures: Vec<(usize, ShardIncidentKind)> = panics
            .iter()
            .map(|p| {
                let s = ids[p.index];
                let kind = if p.message.contains("hang") {
                    ShardIncidentKind::Hang
                } else {
                    ShardIncidentKind::Crash
                };
                (s, kind)
            })
            .collect();
        // Clear cancel flags and disarm every dispatched shard so a slot
        // is clean for re-execution or its repartitioned successor.
        for &s in ids {
            hb.reset(s);
        }
        failures
    }

    fn shard_buf_anomalous(&self, s: usize, layer: LayerKind) -> bool {
        match seam_mode(layer) {
            SeamMode::Col => {
                let buf = lock_clean(&self.bufs[s].dense);
                buf.as_slice()
                    .iter()
                    .any(|&v| !v.is_finite() || f64::from(v.abs()) > PARTIAL_ANOMALY_ABS)
            }
            SeamMode::Row => {
                let part = lock_clean(&self.bufs[s].partial);
                part.iter()
                    .any(|&v| !v.is_finite() || v.abs() > PARTIAL_ANOMALY_ABS)
            }
        }
    }

    /// Assemble the per-shard buffers into the full layer output:
    /// column-sharded slices are concatenated, row-sharded partials go
    /// through the f64 reduce seam; the bias is added and the result
    /// quantised exactly as the unsharded [`Linear::forward_into`] does.
    fn gather(&self, block: usize, layer: LayerKind, n_rows: usize, out: &mut Matrix) {
        let config = self.model.config();
        let out_features = config.out_features(layer);
        match seam_mode(layer) {
            SeamMode::Col => {
                out.reset(n_rows, out_features);
                for (s, sw) in self.weights.iter().enumerate() {
                    let span = self.feature_span(s, layer);
                    if span.is_empty() {
                        continue;
                    }
                    let buf = lock_clean(&self.bufs[s].dense);
                    let bias = sw.blocks[block]
                        .layer(layer)
                        .and_then(|l| l.bias.as_deref());
                    for r in 0..n_rows {
                        let dst = &mut out.row_mut(r)[span.start..span.end];
                        dst.copy_from_slice(buf.row(r));
                        if let Some(b) = bias {
                            for (o, &bv) in dst.iter_mut().zip(b) {
                                *o += bv;
                            }
                        }
                    }
                }
            }
            SeamMode::Row => {
                let guards: Vec<MutexGuard<'_, Vec<f64>>> =
                    self.bufs.iter().map(|b| lock_clean(&b.partial)).collect();
                let parts: Vec<&[f64]> = guards.iter().map(|g| g.as_slice()).collect();
                reduce_seam_into(&parts, n_rows, out_features, out);
                drop(guards);
                // The bias lives on shard 0 and is applied once, after the
                // reduce — the Megatron row-parallel convention.
                if let Some(b) = self.weights[0].blocks[block]
                    .layer(layer)
                    .and_then(|l| l.bias.as_ref())
                {
                    ft2_tensor::add_bias_inplace(out, b);
                }
            }
        }
        out.quantize(config.dtype);
    }

    /// One linear layer through the fan-out / recovery-ladder / gather
    /// pipeline. `Err` means a shard failure survived every per-linear
    /// rung and must be handled by the step loop (degrade or fail).
    #[allow(clippy::too_many_arguments)]
    fn fanout_linear(
        &mut self,
        pool: &WorkStealingPool,
        hb: &ShardHeartbeat,
        block: usize,
        layer: LayerKind,
        step: usize,
        x: &Matrix,
        out: &mut Matrix,
        taps: &mut ShardTapList<'_>,
        policy: &RecoveryPolicy,
        stats: &mut RunStats,
    ) -> Result<(), ShardIncident> {
        let n = self.weights.len();
        let mut pending: Vec<usize> = (0..n).collect();
        let mut reexecs_left = policy.shard_reexec;
        let mut repaired = false;
        loop {
            let directives: Vec<TaskDirective> = pending
                .iter()
                .map(|&s| taps.directive(step, block, layer, s))
                .collect();
            let mut bad = self.exec(pool, hb, &pending, &directives, block, layer, x);
            let crashed: Vec<usize> = bad.iter().map(|&(s, _)| s).collect();
            for &s in pending.iter().filter(|s| !crashed.contains(s)) {
                let ctx = ShardPartialCtx {
                    step,
                    block,
                    layer,
                    shard: s,
                };
                match seam_mode(layer) {
                    SeamMode::Col => {
                        let mut guard = lock_clean(&self.bufs[s].dense);
                        taps.on_partial(&ctx, &mut PartialMut::F32(&mut guard));
                    }
                    SeamMode::Row => {
                        let mut guard = lock_clean(&self.bufs[s].partial);
                        taps.on_partial(&ctx, &mut PartialMut::F64(&mut guard));
                    }
                }
                if self.shard_buf_anomalous(s, layer) {
                    stats.storms += 1;
                    bad.push((s, ShardIncidentKind::Anomaly));
                }
            }
            if bad.is_empty() {
                break;
            }
            // Rung 1: re-execute the failed partials (transient faults are
            // gone on retry).
            if reexecs_left > 0 {
                reexecs_left -= 1;
                stats.shard_retries += bad.len() as u32;
                pending = bad.iter().map(|&(s, _)| s).collect();
                continue;
            }
            // Rung 2: repair sweep over the suspect shards (persistent
            // weight corruption is restored from the scrubber's golden
            // copy), then one more re-execution. Timed: this is the
            // "shard repair" cost the harness compares against a full
            // restart.
            if policy.repair && !repaired && !taps.is_empty() {
                repaired = true;
                let suspects: Vec<usize> = bad.iter().map(|&(s, _)| s).collect();
                let scope = RepairScope {
                    suspects: &suspects,
                    block,
                    layer,
                };
                let t0 = Instant::now();
                let rep = taps.on_repair(&scope, &mut self.weights);
                stats.repair_ns += t0.elapsed().as_nanos() as u64;
                stats.scrubbed_tiles += rep.scrubbed_tiles;
                stats.tiles_repaired += rep.repaired_tiles;
                stats.repair_rungs += 1;
                stats.shard_retries += bad.len() as u32;
                pending = bad.iter().map(|&(s, _)| s).collect();
                continue;
            }
            // Ladder exhausted. Crash/hang failures (listed first) have no
            // data and must escalate; a still-anomalous partial without the
            // degrade rung is accepted as-is — the detected-but-uncorrected
            // path that shows up as SDC, mirroring the unsharded engine's
            // storm acceptance.
            let (shard, kind) = bad[0];
            if kind == ShardIncidentKind::Anomaly && !policy.shard_degrade {
                break;
            }
            return Err(ShardIncident { shard, kind });
        }
        gather_timer(self, block, layer, x.rows(), out);
        Ok(())
    }

    /// One decoder block under the sharded executor. Mirrors
    /// [`crate::block::block_forward_into`] exactly, with every linear
    /// routed through the fan-out and the attention core (scores, softmax,
    /// value accumulation) on the driver under strict kernel semantics.
    #[allow(clippy::too_many_arguments)]
    fn block_sharded(
        &mut self,
        pool: &WorkStealingPool,
        hb: &ShardHeartbeat,
        b: usize,
        x: &mut Matrix,
        start_pos: usize,
        step: usize,
        cache: &mut crate::attention::KvCacheBlock,
        taps: &mut ShardTapList<'_>,
        policy: &RecoveryPolicy,
        bs: &mut BlockScratch,
        stats: &mut RunStats,
    ) -> Result<(), ShardIncident> {
        let model = self.model;
        let config = model.config();
        let golden = &model.weights().blocks[b];
        let n = x.rows();
        let heads = config.heads;
        let head_dim = config.head_dim();

        // Attention sub-block: x = x + Attn(Norm(x)).
        normed_at_into(config, &golden.attn_norm, x, start_pos, &mut bs.normed);
        self.fanout_linear(
            pool, hb, b, LayerKind::KProj, step, &bs.normed, &mut bs.attn.k, taps, policy, stats,
        )?;
        self.fanout_linear(
            pool, hb, b, LayerKind::QProj, step, &bs.normed, &mut bs.attn.q, taps, policy, stats,
        )?;
        self.fanout_linear(
            pool, hb, b, LayerKind::VProj, step, &bs.normed, &mut bs.attn.v, taps, policy, stats,
        )?;
        if config.style == ArchStyle::LlamaStyle {
            let table = model
                .rope_table()
                .expect("llama-style models precompute a rope table");
            apply_rope_with(&mut bs.attn.q, start_pos, heads, table);
            apply_rope_with(&mut bs.attn.k, start_pos, heads, table);
        }
        debug_assert_eq!(cache.len(), start_pos, "cache out of sync with position");
        cache.k.append_rows(&bs.attn.k);
        cache.v.append_rows(&bs.attn.v);
        let total = cache.len();

        let scale = 1.0 / (head_dim as f32).sqrt();
        bs.attn.ctx.reset(n, config.hidden);
        for h in 0..heads {
            let base = h * head_dim;
            bs.attn.scores.reset(n, total);
            for i in 0..n {
                let limit = start_pos + i;
                let qrow = &bs.attn.q.row(i)[base..base + head_dim];
                let srow = bs.attn.scores.row_mut(i);
                for (j, sc) in srow.iter_mut().enumerate() {
                    *sc = if j <= limit {
                        dot(qrow, &cache.k.row(j)[base..base + head_dim]) * scale
                    } else {
                        f32::NEG_INFINITY
                    };
                }
            }
            softmax_rows(&mut bs.attn.scores);
            for i in 0..n {
                let out_row = &mut bs.attn.ctx.row_mut(i)[base..base + head_dim];
                // Strict semantics only: every unmasked term accumulates,
                // so NaN/Inf from an injected fault propagates with IEEE
                // fidelity (no zero-weight skip).
                for j in 0..=(start_pos + i) {
                    let w = bs.attn.scores.get(i, j);
                    let vrow = &cache.v.row(j)[base..base + head_dim];
                    for (o, &vv) in out_row.iter_mut().zip(vrow) {
                        *o += w * vv;
                    }
                }
            }
        }
        self.fanout_linear(
            pool, hb, b, LayerKind::OutProj, step, &bs.attn.ctx, &mut bs.attn.out, taps, policy,
            stats,
        )?;
        add_inplace(x, &bs.attn.out);

        // MLP sub-block: x = x + MLP(Norm(x)).
        normed_at_into(config, &golden.mlp_norm, x, start_pos, &mut bs.normed);
        match config.style {
            ArchStyle::OptStyle => {
                self.fanout_linear(
                    pool, hb, b, LayerKind::Fc1, step, &bs.normed, &mut bs.mlp.h, taps, policy,
                    stats,
                )?;
                activate(config.activation, &mut bs.mlp.h);
                self.fanout_linear(
                    pool, hb, b, LayerKind::Fc2, step, &bs.mlp.h, &mut bs.mlp.out, taps, policy,
                    stats,
                )?;
            }
            ArchStyle::LlamaStyle => {
                self.fanout_linear(
                    pool, hb, b, LayerKind::GateProj, step, &bs.normed, &mut bs.mlp.h, taps,
                    policy, stats,
                )?;
                self.fanout_linear(
                    pool, hb, b, LayerKind::UpProj, step, &bs.normed, &mut bs.mlp.up, taps,
                    policy, stats,
                )?;
                activate(config.activation, &mut bs.mlp.h);
                ft2_tensor::ops::mul_inplace(&mut bs.mlp.h, &bs.mlp.up);
                self.fanout_linear(
                    pool, hb, b, LayerKind::DownProj, step, &bs.mlp.h, &mut bs.mlp.out, taps,
                    policy, stats,
                )?;
            }
        }
        add_inplace(x, &bs.mlp.out);
        Ok(())
    }

    /// One forward pass (prefill or a single decode token) under the
    /// sharded executor. The final hidden states land in `scratch.hidden`.
    #[allow(clippy::too_many_arguments)]
    fn forward_sharded(
        &mut self,
        pool: &WorkStealingPool,
        hb: &ShardHeartbeat,
        tokens: &[u32],
        start_pos: usize,
        step: usize,
        cache: &mut KvCache,
        taps: &mut ShardTapList<'_>,
        policy: &RecoveryPolicy,
        scratch: &mut DecodeScratch,
        stats: &mut RunStats,
    ) -> Result<(), ShardIncident> {
        let model = self.model;
        model.embed_into(model.weights(), tokens, start_pos, &mut scratch.x);
        for b in 0..model.config().blocks {
            self.block_sharded(
                pool,
                hb,
                b,
                &mut scratch.x,
                start_pos,
                step,
                cache.block_mut(b),
                taps,
                policy,
                &mut scratch.block,
                stats,
            )?;
        }
        normed_into(
            model.config(),
            &model.weights().final_norm,
            &scratch.x,
            &mut scratch.hidden,
        );
        Ok(())
    }

    /// Greedy sharded generation with shard-granular fault isolation.
    ///
    /// Step numbering matches the unsharded engine: step 0 (the prefill)
    /// produces the first token; steps `1..gen_tokens` decode the rest.
    /// Each step snapshots the KV length; a shard failure that escalates
    /// past the per-linear ladder rolls the step back and either degrades
    /// (evict + re-partition + retry, when [`RecoveryPolicy::shard_degrade`]
    /// is set and survivors remain) or ends the generation with
    /// [`ShardedGeneration::failed`] set.
    pub fn generate_with(
        &mut self,
        pool: &WorkStealingPool,
        prompt: &[u32],
        gen_tokens: usize,
        taps: &mut ShardTapList<'_>,
        policy: RecoveryPolicy,
        heartbeat: Duration,
    ) -> ShardedGeneration {
        let config = self.model.config();
        assert!(!prompt.is_empty(), "empty prompt");
        assert!(gen_tokens >= 1, "gen_tokens must be at least 1");
        assert!(
            prompt.len() + gen_tokens <= config.max_seq,
            "sequence exceeds max_seq ({} + {} > {})",
            prompt.len(),
            gen_tokens,
            config.max_seq
        );
        self.reset();
        let monitor = HeartbeatMonitor::spawn(self.plan.shards, heartbeat);
        let hb = monitor.state();

        let mut cache = KvCache::new(config);
        let mut scratch = DecodeScratch::new();
        let mut stats = RunStats::default();
        let mut tokens: Vec<u32> = Vec::with_capacity(gen_tokens);
        let mut failed: Option<ShardFailure> = None;
        let t0 = Instant::now();
        let mut prefill_ns = 0u64;
        let mut t_decode = Instant::now();

        'steps: for step in 0..gen_tokens {
            let step_tokens: Vec<u32> = if step == 0 {
                prompt.to_vec()
            } else {
                vec![*tokens.last().expect("step > 0 has a prior token")]
            };
            let pos = if step == 0 { 0 } else { prompt.len() + step - 1 };
            let snapshot = cache.len();
            loop {
                let rep = taps.on_step_start(step, &mut self.weights);
                stats.scrubbed_tiles += rep.scrubbed_tiles;
                stats.tiles_repaired += rep.repaired_tiles;
                let result = self.forward_sharded(
                    pool,
                    &hb,
                    &step_tokens,
                    pos,
                    step,
                    &mut cache,
                    taps,
                    &policy,
                    &mut scratch,
                    &mut stats,
                );
                taps.on_step_end(step);
                match result {
                    Ok(()) => break,
                    Err(inc) => {
                        // A mid-block abort may have appended partial K/V
                        // rows; the snapshot truncate restores the exact
                        // pre-step cache.
                        cache.truncate(snapshot);
                        if policy.shard_degrade && self.weights.len() > 1 {
                            stats.degrade_events.push(DegradeEvent {
                                step,
                                shard: inc.shard,
                                kind: inc.kind,
                            });
                            stats.shards_lost += 1;
                            self.degrade();
                            taps.on_repartition(&self.weights);
                            // Survivor slots are reset for the repartitioned
                            // plan; slots beyond it are *evicted* so a
                            // monitor polling after the eviction can never
                            // report the dead shard as hung again.
                            let live = self.weights.len();
                            for i in 0..hb.shards() {
                                if i < live {
                                    hb.reset(i);
                                } else {
                                    hb.evict(i);
                                }
                            }
                            continue;
                        }
                        failed = Some(ShardFailure {
                            step,
                            shard: inc.shard,
                            kind: inc.kind,
                        });
                        break 'steps;
                    }
                }
            }
            let rows = scratch.hidden.rows();
            let last = scratch.hidden.slice_rows(rows - 1, rows);
            self.model
                .logits_into(self.model.weights(), &last, &mut scratch.logits);
            tokens.push(argmax(scratch.logits.row(0)) as u32);
            if step == 0 {
                prefill_ns = t0.elapsed().as_nanos() as u64;
                t_decode = Instant::now();
            }
        }
        if prefill_ns == 0 {
            // Failed during the prefill: attribute the elapsed time there.
            prefill_ns = t0.elapsed().as_nanos() as u64;
        }
        let decode_ns = if tokens.is_empty() {
            0
        } else {
            t_decode.elapsed().as_nanos() as u64
        };

        ShardedGeneration {
            tokens,
            shards: self.weights.len(),
            shards_lost: stats.shards_lost,
            degrade_events: stats.degrade_events,
            shard_retries: stats.shard_retries,
            storms: stats.storms,
            repair_rungs: stats.repair_rungs,
            scrubbed_tiles: stats.scrubbed_tiles,
            tiles_repaired: stats.tiles_repaired,
            repair_ns: stats.repair_ns,
            failed,
            prefill_ns,
            decode_ns,
        }
    }
}

/// Free-function wrapper so the borrow of `&mut out` (from the caller's
/// scratch) composes with `&self` in [`ShardedModel::fanout_linear`].
fn gather_timer(m: &ShardedModel<'_>, block: usize, layer: LayerKind, n_rows: usize, out: &mut Matrix) {
    m.gather(block, layer, n_rows, out);
}

fn activate(act: Activation, m: &mut Matrix) {
    match act {
        Activation::Relu => relu_inplace(m),
        Activation::Gelu => gelu_inplace(m),
        Activation::Silu => silu_inplace(m),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;

    const HEARTBEAT: Duration = Duration::from_millis(15);

    #[test]
    fn balanced_spans_cover_without_overlap() {
        for (total, parts) in [(7usize, 4usize), (4, 4), (3, 4), (1, 1), (128, 5), (0, 3)] {
            let spans = balanced_spans(total, parts);
            assert_eq!(spans.len(), parts);
            let mut covered = 0;
            for (i, s) in spans.iter().enumerate() {
                assert!(s.start <= s.end);
                assert_eq!(s.start, covered, "span {i} not contiguous");
                covered = s.end;
            }
            assert_eq!(covered, total);
            let lens: Vec<usize> = spans.iter().map(|s| s.len()).collect();
            let max = lens.iter().copied().max().unwrap();
            let min = lens.iter().copied().min().unwrap();
            assert!(max - min <= 1, "unbalanced spans: {lens:?}");
        }
    }

    #[test]
    fn partition_reassemble_is_involution() {
        for config in [ModelConfig::tiny_opt(), ModelConfig::tiny_llama()] {
            let golden = crate::weights::ModelWeights::build(&config);
            for n in 1..=5 {
                let plan = ShardPlan::new(&config, n);
                let shards = plan.partition(&config, &golden);
                // Scramble the target's block linears, then reassemble.
                let mut target = golden.clone();
                for bw in &mut target.blocks {
                    for kind in config.block_layers() {
                        let lin = bw.layer_mut(*kind).unwrap();
                        for v in lin.weight.as_mut_slice() {
                            *v = 7.75;
                        }
                        if let Some(b) = lin.bias.as_mut() {
                            for v in b {
                                *v = -7.75;
                            }
                        }
                    }
                }
                plan.reassemble_into(&shards, &mut target);
                assert_eq!(
                    target, golden,
                    "{}: partition/reassemble not an involution at n={n}",
                    config.name
                );
            }
        }
    }

    #[test]
    fn fault_free_generation_is_shard_count_invariant() {
        let pool = WorkStealingPool::new(3);
        for config in [ModelConfig::tiny_opt(), ModelConfig::tiny_llama()] {
            let model = Model::new(config);
            let prompt = [3u32, 14, 15, 9, 2, 6];
            let mut golden_taps = ShardTapList::new();
            let golden = ShardedModel::new(&model, 1).generate_with(
                &pool,
                &prompt,
                8,
                &mut golden_taps,
                RecoveryPolicy::disabled(),
                HEARTBEAT,
            );
            assert_eq!(golden.tokens.len(), 8);
            assert!(golden.completed());
            for n in [2usize, 3, 4] {
                let mut taps = ShardTapList::new();
                let out = ShardedModel::new(&model, n).generate_with(
                    &pool,
                    &prompt,
                    8,
                    &mut taps,
                    RecoveryPolicy::disabled(),
                    HEARTBEAT,
                );
                assert!(out.completed());
                assert_eq!(out.storms, 0);
                assert_eq!(
                    out.tokens,
                    golden.tokens,
                    "{} diverged at n={n}",
                    model.config().name
                );
            }
        }
    }

    /// Directive-based injector for executor tests.
    struct DirectiveFault {
        shard: usize,
        from_step: usize,
        directive: TaskDirective,
        persistent: bool,
        fired: bool,
    }

    impl ShardTap for DirectiveFault {
        fn directive(
            &mut self,
            step: usize,
            block: usize,
            _layer: LayerKind,
            shard: usize,
        ) -> TaskDirective {
            if shard == self.shard && block == 0 && step >= self.from_step {
                if self.persistent {
                    return self.directive;
                }
                if !self.fired {
                    self.fired = true;
                    return self.directive;
                }
            }
            TaskDirective::Proceed
        }

        fn on_repartition(&mut self, _shards: &[ShardWeights]) {
            // The faulty "GPU" left the replica.
            self.fired = true;
            self.persistent = false;
        }
    }

    #[test]
    fn crash_with_degrade_keeps_serving() {
        let pool = WorkStealingPool::new(3);
        let model = Model::new(ModelConfig::tiny_opt());
        let mut fault = DirectiveFault {
            shard: 1,
            from_step: 2,
            directive: TaskDirective::Crash,
            persistent: true,
            fired: false,
        };
        let mut taps = ShardTapList::new();
        taps.push(&mut fault);
        let out = ShardedModel::new(&model, 3).generate_with(
            &pool,
            &[3, 14, 15, 9],
            8,
            &mut taps,
            RecoveryPolicy::retries(1).with_shard_degrade(),
            HEARTBEAT,
        );
        assert!(out.completed(), "degrade must keep the generation alive");
        assert_eq!(out.tokens.len(), 8);
        assert_eq!(out.shards_lost, 1);
        assert_eq!(out.shards, 2);
        assert_eq!(out.degrade_events.len(), 1);
        assert_eq!(out.degrade_events[0].kind, ShardIncidentKind::Crash);
        assert_eq!(out.degrade_events[0].step, 2);
    }

    #[test]
    fn crash_without_degrade_fails_the_generation() {
        let pool = WorkStealingPool::new(2);
        let model = Model::new(ModelConfig::tiny_opt());
        let mut fault = DirectiveFault {
            shard: 0,
            from_step: 3,
            directive: TaskDirective::Crash,
            persistent: true,
            fired: false,
        };
        let mut taps = ShardTapList::new();
        taps.push(&mut fault);
        let out = ShardedModel::new(&model, 2).generate_with(
            &pool,
            &[3, 14, 15, 9],
            8,
            &mut taps,
            RecoveryPolicy::retries(1),
            HEARTBEAT,
        );
        let failure = out.failed.expect("crash without degrade must fail");
        assert_eq!(failure.kind, ShardIncidentKind::Crash);
        assert_eq!(failure.step, 3);
        assert_eq!(failure.shard, 0);
        assert_eq!(out.tokens.len(), 3, "tokens before the failing step");
    }

    #[test]
    fn hang_is_isolated_by_the_heartbeat_not_a_deadline() {
        let pool = WorkStealingPool::new(2);
        let model = Model::new(ModelConfig::tiny_opt());
        let mut fault = DirectiveFault {
            shard: 1,
            from_step: 1,
            directive: TaskDirective::Hang,
            persistent: true,
            fired: false,
        };
        let mut taps = ShardTapList::new();
        taps.push(&mut fault);
        let t0 = Instant::now();
        let out = ShardedModel::new(&model, 2).generate_with(
            &pool,
            &[3, 14, 15, 9],
            6,
            &mut taps,
            RecoveryPolicy::retries(1).with_shard_degrade(),
            Duration::from_millis(10),
        );
        let elapsed = t0.elapsed();
        assert!(out.completed());
        assert_eq!(out.shards_lost, 1);
        assert_eq!(out.degrade_events[0].kind, ShardIncidentKind::Hang);
        // Isolation within a few heartbeat intervals (re-exec waits once
        // more), nowhere near a multi-second trial deadline.
        assert!(
            elapsed < Duration::from_secs(3),
            "hang isolation took {elapsed:?}"
        );
    }

    /// Scales one shard's partial by 1e9 once — a transient activation
    /// storm below the layer-output taps.
    struct TransientStormTap {
        shard: usize,
        step: usize,
        fired: bool,
    }

    impl ShardTap for TransientStormTap {
        fn on_partial(&mut self, ctx: &ShardPartialCtx, data: PartialMut<'_>) {
            if ctx.shard == self.shard && ctx.step == self.step && !self.fired {
                self.fired = true;
                match data {
                    PartialMut::F32(m) => {
                        for v in m.as_mut_slice() {
                            *v *= 1e9;
                        }
                    }
                    PartialMut::F64(p) => {
                        for v in p.iter_mut() {
                            *v *= 1e9;
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn transient_storm_is_cleared_by_reexecution() {
        let pool = WorkStealingPool::new(2);
        let model = Model::new(ModelConfig::tiny_llama());
        let prompt = [4u32, 9, 16, 25];
        let mut clean_taps = ShardTapList::new();
        let clean = ShardedModel::new(&model, 2).generate_with(
            &pool,
            &prompt,
            8,
            &mut clean_taps,
            RecoveryPolicy::disabled(),
            HEARTBEAT,
        );
        let mut storm = TransientStormTap {
            shard: 0,
            step: 3,
            fired: false,
        };
        let mut taps = ShardTapList::new();
        taps.push(&mut storm);
        let out = ShardedModel::new(&model, 2).generate_with(
            &pool,
            &prompt,
            8,
            &mut taps,
            RecoveryPolicy::retries(1),
            HEARTBEAT,
        );
        assert!(out.completed());
        assert_eq!(out.tokens, clean.tokens, "re-execution must clear the storm");
        assert!(out.storms >= 1);
        assert!(out.shard_retries >= 1);
    }

    #[test]
    fn empty_span_shards_are_valid_failure_domains() {
        // heads=4, ffn=128 at n=5: shard 4 has an empty head span but a
        // non-empty ffn span; generation must still be shard-invariant.
        let pool = WorkStealingPool::new(3);
        let model = Model::new(ModelConfig::tiny_opt());
        let prompt = [1u32, 2, 3];
        let mut a_taps = ShardTapList::new();
        let a = ShardedModel::new(&model, 1).generate_with(
            &pool,
            &prompt,
            5,
            &mut a_taps,
            RecoveryPolicy::disabled(),
            HEARTBEAT,
        );
        let mut b_taps = ShardTapList::new();
        let b = ShardedModel::new(&model, 5).generate_with(
            &pool,
            &prompt,
            5,
            &mut b_taps,
            RecoveryPolicy::disabled(),
            HEARTBEAT,
        );
        assert_eq!(a.tokens, b.tokens);
    }
}
