//! The architecture op-graph: what happens to a linear layer's output
//! before the *next* linear layer consumes it.
//!
//! This is the input to the paper's criticality heuristic (§4.1.2):
//!
//! > a layer is deemed critical if no scaling operation or activation layer
//! > is present before the next linear layer.
//!
//! We model the path from each linear layer's output to the next linear
//! layer as a list of [`OpClass`] values. The classification is purely
//! structural — derived from [`ArchStyle`] — and requires no execution,
//! which is exactly the property the paper exploits to avoid profiling.

use crate::config::{ArchStyle, LayerKind, ModelConfig};

/// Classes of operation that can appear between two linear layers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Multiplication by a constant < 1 (the `1/sqrt(d_k)` attention-score
    /// scale). Reduces the magnitude of faulty values.
    Scale,
    /// Row-wise softmax: output bounded in [0, 1] regardless of input
    /// magnitude. The strongest magnitude squasher.
    Softmax,
    /// Elementwise activation (ReLU/GELU/SiLU): kills large negative values
    /// and bounds the derivative path of large positives through the gate.
    Activation,
    /// Attention-weighted sum of value vectors (convex combination over
    /// positions).
    WeightedSum,
    /// Elementwise product with another branch (gated MLP).
    Mul,
    /// Residual addition from a branch that bypassed this layer.
    Residual,
    /// Layer/RMS normalisation.
    Norm,
}

impl OpClass {
    /// Does this op *reduce the magnitude* of extreme faulty values in the
    /// sense of the paper's heuristic? Only true scaling operations and
    /// activation layers qualify; residual adds, norms, weighted sums and
    /// elementwise products do not (a huge value survives all of them).
    pub const fn squashes_magnitude(self) -> bool {
        matches!(self, OpClass::Scale | OpClass::Softmax | OpClass::Activation)
    }
}

/// The per-layer op paths of one architecture.
#[derive(Clone, Debug)]
pub struct ArchGraph {
    style: ArchStyle,
    paths: Vec<(LayerKind, Vec<OpClass>)>,
}

impl ArchGraph {
    /// Build the op-graph for an architecture style.
    pub fn for_style(style: ArchStyle) -> ArchGraph {
        use LayerKind::*;
        use OpClass::*;
        let paths: Vec<(LayerKind, Vec<OpClass>)> = match style {
            ArchStyle::OptStyle => vec![
                // K/Q feed the attention-score computation: scores are
                // scaled by 1/sqrt(d_k) then softmaxed.
                (KProj, vec![Scale, Softmax]),
                (QProj, vec![Scale, Softmax]),
                // V is combined by attention weights (a convex combination —
                // no magnitude reduction for a single huge element in the
                // attended row) and then hits OUT_PROJ.
                (VProj, vec![WeightedSum]),
                // OUT_PROJ output goes through residual add and the next
                // norm before FC1.
                (OutProj, vec![Residual, Norm]),
                // FC1 feeds the activation.
                (Fc1, vec![Activation]),
                // FC2 output: residual + norm, then next block's K/Q/V.
                (Fc2, vec![Residual, Norm]),
            ],
            ArchStyle::LlamaStyle => vec![
                (KProj, vec![Scale, Softmax]),
                (QProj, vec![Scale, Softmax]),
                (VProj, vec![WeightedSum]),
                (OutProj, vec![Residual, Norm]),
                // GATE goes through the activation before the elementwise
                // product with UP.
                (GateProj, vec![Activation, Mul]),
                // UP is multiplied by the activated gate — an elementwise
                // product does NOT squash a huge faulty value (the gate is
                // O(1) on average), so UP_PROJ remains critical. This is the
                // Table 1 distinction MaxiMals misses.
                (UpProj, vec![Mul]),
                (DownProj, vec![Residual, Norm]),
            ],
        };
        ArchGraph { style, paths }
    }

    /// Build the op-graph for a model configuration.
    pub fn for_config(config: &ModelConfig) -> ArchGraph {
        Self::for_style(config.style)
    }

    /// The architecture style this graph describes.
    pub fn style(&self) -> ArchStyle {
        self.style
    }

    /// The ops on the path from `kind`'s output to the next linear layer,
    /// or `None` if the layer does not exist in this architecture.
    pub fn path_after(&self, kind: LayerKind) -> Option<&[OpClass]> {
        self.paths
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, p)| p.as_slice())
    }

    /// All layers with their paths, in block execution order.
    pub fn layers(&self) -> impl Iterator<Item = (LayerKind, &[OpClass])> {
        self.paths.iter().map(|(k, p)| (*k, p.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opt_graph_paths() {
        let g = ArchGraph::for_style(ArchStyle::OptStyle);
        assert_eq!(
            g.path_after(LayerKind::KProj).unwrap(),
            &[OpClass::Scale, OpClass::Softmax]
        );
        assert_eq!(g.path_after(LayerKind::Fc1).unwrap(), &[OpClass::Activation]);
        assert_eq!(
            g.path_after(LayerKind::Fc2).unwrap(),
            &[OpClass::Residual, OpClass::Norm]
        );
        assert!(g.path_after(LayerKind::GateProj).is_none());
    }

    #[test]
    fn llama_graph_paths() {
        let g = ArchGraph::for_style(ArchStyle::LlamaStyle);
        assert_eq!(
            g.path_after(LayerKind::GateProj).unwrap(),
            &[OpClass::Activation, OpClass::Mul]
        );
        assert_eq!(g.path_after(LayerKind::UpProj).unwrap(), &[OpClass::Mul]);
        assert!(g.path_after(LayerKind::Fc1).is_none());
        assert_eq!(g.layers().count(), 7);
    }

    #[test]
    fn squash_classification() {
        assert!(OpClass::Scale.squashes_magnitude());
        assert!(OpClass::Softmax.squashes_magnitude());
        assert!(OpClass::Activation.squashes_magnitude());
        assert!(!OpClass::Residual.squashes_magnitude());
        assert!(!OpClass::Norm.squashes_magnitude());
        assert!(!OpClass::Mul.squashes_magnitude());
        assert!(!OpClass::WeightedSum.squashes_magnitude());
    }
}
