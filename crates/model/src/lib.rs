#![warn(missing_docs)]
//! # ft2-model
//!
//! A from-scratch decoder-only transformer inference engine — the substrate
//! the paper's fault-injection and protection experiments run on.
//!
//! Two architecture families are implemented, matching Fig. 1 of the paper:
//!
//! * **OPT-style** (Fig. 1a — OPT-6.7B/2.7B, GPT-J-6B): pre-LayerNorm,
//!   learned positional embeddings, attention (`K/Q/V/OUT_PROJ`) and a
//!   two-layer MLP (`FC1 → activation → FC2`).
//! * **Llama-style** (Fig. 1b — Llama2, Vicuna, Qwen2): pre-RMSNorm, rotary
//!   position embeddings, attention, and a gated MLP
//!   (`GATE/UP_PROJ → SiLU(gate) ⊙ up → DOWN_PROJ`).
//!
//! Key features:
//!
//! * **Hook mechanism** ([`hooks`]): every linear-layer output passes
//!   through an ordered tap list, mirroring PyTorch's
//!   `register_forward_hook` — the interception point used both for fault
//!   injection and for FT2's range-restriction protection.
//! * **KV-cached autoregressive generation** ([`engine`]): faults injected
//!   into `K/V_PROJ` outputs persist in the cache and keep corrupting later
//!   steps, exactly as on real serving stacks.
//! * **Architecture graph** ([`graph`]): a queryable description of the ops
//!   between each linear layer and the next, which `ft2-core` consumes to
//!   run the paper's criticality heuristic without any profiling run.
//! * **Shaped synthetic weights** ([`weights`], [`zoo`]): per-layer-type
//!   weight statistics reproduce the published activation distributions
//!   (Fig. 8, Fig. 12) so that criticality *emerges* from the arithmetic
//!   rather than being hard-coded.

pub mod attention;
pub mod block;
pub mod config;
pub mod engine;
pub mod graph;
pub mod hooks;
pub mod mlp;
pub mod scratch;
pub mod shard;
pub mod state;
pub mod weights;
pub mod zoo;

pub use config::{Activation, ArchStyle, LayerKind, ModelConfig, NormKind, RopeTable};
pub use ft2_tensor::KernelPolicy;
pub use scratch::{AttnScratch, BlockScratch, DecodeScratch, MlpScratch};
pub use engine::{
    GenerationOutput, KvCache, Model, RecoveryAction, RecoveryPolicy, StepRecord,
};
pub use graph::{ArchGraph, OpClass};
pub use hooks::{
    AnomalyVerdict, HookKind, LayerTap, NoTaps, RecordingTap, StepReport, TapCtx, TapList,
    TapPoint, MAX_BLOCK_HITS,
};
pub use shard::{
    balanced_spans, DegradeEvent, PartialMut, RepairScope, ShardBlockWeights, ShardFailure,
    ShardIncidentKind, ShardPartialCtx, ShardPlan, ShardStateReport, ShardTap, ShardTapList,
    ShardWeights, ShardedGeneration, ShardedModel, Span, TaskDirective,
};
pub use state::{StateCtx, StateReport, StateTap, StateTapList};
pub use zoo::{model_zoo, ModelSpec, ZooModel};
