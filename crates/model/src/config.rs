//! Model configuration and layer taxonomy.

use ft2_tensor::DType;

/// The two decoder-block families of Fig. 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ArchStyle {
    /// Fig. 1(a): LayerNorm, learned positions, `FC1 → act → FC2` MLP.
    OptStyle,
    /// Fig. 1(b): RMSNorm, rotary positions, gated `GATE/UP → DOWN` MLP.
    LlamaStyle,
}

/// Normalisation used at block boundaries.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NormKind {
    /// Mean/variance LayerNorm with affine parameters.
    LayerNorm,
    /// Scale-only RMSNorm.
    RmsNorm,
}

/// MLP activation function.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Activation {
    /// Rectified linear unit (OPT).
    Relu,
    /// Gaussian error linear unit, tanh approximation (GPT-J).
    Gelu,
    /// Sigmoid-weighted linear unit (Llama/Vicuna/Qwen).
    Silu,
}

/// The linear layers of a decoder block — the fault-injection and
/// protection targets of the paper (Table 1 rows).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LayerKind {
    /// Key projection.
    KProj,
    /// Query projection.
    QProj,
    /// Value projection.
    VProj,
    /// Attention output projection.
    OutProj,
    /// First MLP linear (OPT-style).
    Fc1,
    /// Second MLP linear (OPT-style).
    Fc2,
    /// Gate projection (Llama-style gated MLP).
    GateProj,
    /// Up projection (Llama-style gated MLP).
    UpProj,
    /// Down projection (Llama-style gated MLP).
    DownProj,
}

impl LayerKind {
    /// Uppercase display name matching the paper's figures.
    pub const fn name(self) -> &'static str {
        match self {
            LayerKind::KProj => "K_PROJ",
            LayerKind::QProj => "Q_PROJ",
            LayerKind::VProj => "V_PROJ",
            LayerKind::OutProj => "OUT_PROJ",
            LayerKind::Fc1 => "FC1",
            LayerKind::Fc2 => "FC2",
            LayerKind::GateProj => "GATE_PROJ",
            LayerKind::UpProj => "UP_PROJ",
            LayerKind::DownProj => "DOWN_PROJ",
        }
    }

    /// The layer kinds present in each architecture style, in execution
    /// order within a block.
    pub fn for_style(style: ArchStyle) -> &'static [LayerKind] {
        match style {
            ArchStyle::OptStyle => &[
                LayerKind::KProj,
                LayerKind::QProj,
                LayerKind::VProj,
                LayerKind::OutProj,
                LayerKind::Fc1,
                LayerKind::Fc2,
            ],
            ArchStyle::LlamaStyle => &[
                LayerKind::KProj,
                LayerKind::QProj,
                LayerKind::VProj,
                LayerKind::OutProj,
                LayerKind::GateProj,
                LayerKind::UpProj,
                LayerKind::DownProj,
            ],
        }
    }

    /// All nine layer kinds (Table 1 rows).
    pub const ALL: [LayerKind; 9] = [
        LayerKind::KProj,
        LayerKind::QProj,
        LayerKind::VProj,
        LayerKind::OutProj,
        LayerKind::Fc1,
        LayerKind::Fc2,
        LayerKind::GateProj,
        LayerKind::UpProj,
        LayerKind::DownProj,
    ];
}

/// Full configuration of a simulator model.
#[derive(Clone, Debug)]
pub struct ModelConfig {
    /// Human-readable name, e.g. `"OPT-6.7B-sim"`.
    pub name: String,
    /// Decoder-block family.
    pub style: ArchStyle,
    /// Hidden (embedding) dimension.
    pub hidden: usize,
    /// Number of attention heads (`hidden % heads == 0`).
    pub heads: usize,
    /// Number of decoder blocks.
    pub blocks: usize,
    /// MLP intermediate dimension.
    pub ffn: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Maximum sequence length (prompt + generated).
    pub max_seq: usize,
    /// MLP activation.
    pub activation: Activation,
    /// Block-boundary normalisation.
    pub norm: NormKind,
    /// Whether linear layers carry bias terms (OPT does, Llama does not).
    pub bias: bool,
    /// Storage precision of weights and layer outputs.
    pub dtype: DType,
    /// Weight-initialisation seed; two models with different seeds are
    /// different "pretrained checkpoints".
    pub seed: u64,
    /// Parameter count of the *paper-scale* model this config stands in for
    /// (used by `ft2-hw` for timing estimates at the published scale).
    pub paper_params: f64,
}

impl ModelConfig {
    /// Per-head dimension.
    pub fn head_dim(&self) -> usize {
        self.hidden / self.heads
    }

    /// Check the structural invariants the engine relies on. Called by
    /// `Model::new`, so a misconfigured zoo entry fails loudly at
    /// construction instead of silently misbehaving (e.g. `apply_rope`
    /// used to drop the last lane of an odd `head_dim` without a word).
    pub fn validate(&self) -> Result<(), String> {
        if self.hidden == 0 || self.blocks == 0 || self.ffn == 0 || self.vocab == 0 {
            return Err(format!(
                "{}: all dimensions must be nonzero (hidden={}, blocks={}, ffn={}, vocab={})",
                self.name, self.hidden, self.blocks, self.ffn, self.vocab
            ));
        }
        if self.heads == 0 || !self.hidden.is_multiple_of(self.heads) {
            return Err(format!(
                "{}: hidden ({}) must be divisible by heads ({})",
                self.name, self.hidden, self.heads
            ));
        }
        if self.max_seq == 0 {
            return Err(format!("{}: max_seq must be nonzero", self.name));
        }
        if self.style == ArchStyle::LlamaStyle && !self.head_dim().is_multiple_of(2) {
            return Err(format!(
                "{}: rotary embeddings need an even head_dim, got {}",
                self.name,
                self.head_dim()
            ));
        }
        Ok(())
    }

    /// The linear layer kinds a block of this model contains.
    pub fn block_layers(&self) -> &'static [LayerKind] {
        LayerKind::for_style(self.style)
    }

    /// Output feature count of a given linear layer.
    pub fn out_features(&self, kind: LayerKind) -> usize {
        match kind {
            LayerKind::KProj
            | LayerKind::QProj
            | LayerKind::VProj
            | LayerKind::OutProj
            | LayerKind::Fc2
            | LayerKind::DownProj => self.hidden,
            LayerKind::Fc1 | LayerKind::GateProj | LayerKind::UpProj => self.ffn,
        }
    }

    /// Input feature count of a given linear layer.
    pub fn in_features(&self, kind: LayerKind) -> usize {
        match kind {
            LayerKind::Fc2 | LayerKind::DownProj => self.ffn,
            _ => self.hidden,
        }
    }

    /// Total protected-layer count if every block-linear layer is covered
    /// (the paper's "72–128 protected layers" bookkeeping in §5.2.2).
    pub fn total_block_linears(&self) -> usize {
        self.blocks * self.block_layers().len()
    }

    /// Actual parameter count of the simulator model.
    pub fn sim_params(&self) -> usize {
        let per_block: usize = self
            .block_layers()
            .iter()
            .map(|&k| {
                self.in_features(k) * self.out_features(k)
                    + if self.bias { self.out_features(k) } else { 0 }
            })
            .sum();
        let embeddings = self.vocab * self.hidden
            + if self.style == ArchStyle::OptStyle {
                self.max_seq * self.hidden
            } else {
                0
            };
        let head = self.vocab * self.hidden;
        embeddings + self.blocks * per_block + head
    }

    /// A small but fully functional test configuration.
    pub fn tiny_opt() -> ModelConfig {
        ModelConfig {
            name: "tiny-opt".into(),
            style: ArchStyle::OptStyle,
            hidden: 32,
            heads: 4,
            blocks: 2,
            ffn: 128,
            vocab: 96,
            max_seq: 64,
            activation: Activation::Relu,
            norm: NormKind::LayerNorm,
            bias: true,
            dtype: DType::F16,
            seed: 0xF72,
            paper_params: 6.66e9,
        }
    }

    /// A small Llama-style test configuration.
    pub fn tiny_llama() -> ModelConfig {
        ModelConfig {
            name: "tiny-llama".into(),
            style: ArchStyle::LlamaStyle,
            hidden: 32,
            heads: 4,
            blocks: 2,
            ffn: 96,
            vocab: 96,
            max_seq: 64,
            activation: Activation::Silu,
            norm: NormKind::RmsNorm,
            bias: false,
            dtype: DType::F16,
            seed: 0x11A,
            paper_params: 6.74e9,
        }
    }
}

/// Precomputed rotary-embedding angles for every `(position, pair)` of a
/// model: `sin`/`cos` of `pos · 10000^(−2i/head_dim)` for positions
/// `0..max_seq` and pairs `0..head_dim/2`.
///
/// The table entries are produced by the *identical* float expression the
/// on-the-fly [`crate::attention::apply_rope`] evaluates, so table-driven
/// RoPE is bit-for-bit equal to the recomputing path — it just removes a
/// `powf` + `sin_cos` per element from every decode step.
#[derive(Clone, Debug)]
pub struct RopeTable {
    half: usize,
    sin: Vec<f32>,
    cos: Vec<f32>,
}

impl RopeTable {
    /// Build the table for a model (positions `0..config.max_seq`).
    pub fn build(config: &ModelConfig) -> RopeTable {
        let head_dim = config.head_dim();
        assert!(head_dim.is_multiple_of(2), "rotary embeddings need an even head_dim");
        let half = head_dim / 2;
        let positions = config.max_seq;
        let mut sin = Vec::with_capacity(positions * half);
        let mut cos = Vec::with_capacity(positions * half);
        for pos in 0..positions {
            for i in 0..half {
                // Must match apply_rope's expression exactly for the
                // bit-identity contract above.
                let theta =
                    pos as f32 * 10_000f32.powf(-2.0 * i as f32 / head_dim as f32);
                let (s, c) = theta.sin_cos();
                sin.push(s);
                cos.push(c);
            }
        }
        RopeTable { half, sin, cos }
    }

    /// Number of rotation pairs per head (`head_dim / 2`).
    pub fn half(&self) -> usize {
        self.half
    }

    /// The `(sin, cos)` slices for one absolute position, `half` entries
    /// each. Panics past `max_seq` (the engine rejects such sequences).
    pub fn at(&self, pos: usize) -> (&[f32], &[f32]) {
        let lo = pos * self.half;
        let hi = lo + self.half;
        (&self.sin[lo..hi], &self.cos[lo..hi])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_sets_per_style() {
        let opt = LayerKind::for_style(ArchStyle::OptStyle);
        assert_eq!(opt.len(), 6);
        assert!(opt.contains(&LayerKind::Fc1));
        assert!(!opt.contains(&LayerKind::GateProj));
        let llama = LayerKind::for_style(ArchStyle::LlamaStyle);
        assert_eq!(llama.len(), 7);
        assert!(llama.contains(&LayerKind::UpProj));
        assert!(!llama.contains(&LayerKind::Fc1));
    }

    #[test]
    fn feature_shapes() {
        let c = ModelConfig::tiny_opt();
        assert_eq!(c.head_dim(), 8);
        assert_eq!(c.in_features(LayerKind::Fc1), 32);
        assert_eq!(c.out_features(LayerKind::Fc1), 128);
        assert_eq!(c.in_features(LayerKind::Fc2), 128);
        assert_eq!(c.out_features(LayerKind::Fc2), 32);
        assert_eq!(c.total_block_linears(), 12);

        let l = ModelConfig::tiny_llama();
        assert_eq!(l.in_features(LayerKind::DownProj), 96);
        assert_eq!(l.out_features(LayerKind::UpProj), 96);
        assert_eq!(l.total_block_linears(), 14);
    }

    #[test]
    fn sim_params_counts_everything() {
        let c = ModelConfig::tiny_opt();
        // embeddings: 96*32 + 64*32; head: 96*32
        // per block: k,q,v,out: 32*32+32 each; fc1: 32*128+128; fc2: 128*32+32
        let per_block = 4 * (32 * 32 + 32) + (32 * 128 + 128) + (128 * 32 + 32);
        let expect = 96 * 32 + 64 * 32 + 96 * 32 + 2 * per_block;
        assert_eq!(c.sim_params(), expect);
    }

    #[test]
    fn validate_accepts_the_test_configs() {
        assert!(ModelConfig::tiny_opt().validate().is_ok());
        assert!(ModelConfig::tiny_llama().validate().is_ok());
    }

    #[test]
    fn validate_rejects_odd_head_dim_for_rotary() {
        let mut c = ModelConfig::tiny_llama();
        c.hidden = 36; // 36 / 4 heads = head_dim 9
        let err = c.validate().unwrap_err();
        assert!(err.contains("even head_dim"), "got: {err}");
        // The same shape is fine for OPT-style (learned positions).
        let mut o = ModelConfig::tiny_opt();
        o.hidden = 36;
        assert!(o.validate().is_ok());
    }

    #[test]
    fn validate_rejects_indivisible_heads_and_zero_dims() {
        let mut c = ModelConfig::tiny_opt();
        c.heads = 5;
        assert!(c.validate().is_err());
        let mut z = ModelConfig::tiny_opt();
        z.vocab = 0;
        assert!(z.validate().is_err());
    }

    #[test]
    fn rope_table_matches_on_the_fly_bitwise() {
        let config = ModelConfig::tiny_llama();
        let table = RopeTable::build(&config);
        let head_dim = config.head_dim();
        let half = head_dim / 2;
        assert_eq!(table.half(), half);
        for pos in [0usize, 1, 7, config.max_seq - 1] {
            let (sin, cos) = table.at(pos);
            for i in 0..half {
                let theta =
                    pos as f32 * 10_000f32.powf(-2.0 * i as f32 / head_dim as f32);
                let (s, c) = theta.sin_cos();
                assert_eq!(sin[i].to_bits(), s.to_bits(), "sin pos={pos} i={i}");
                assert_eq!(cos[i].to_bits(), c.to_bits(), "cos pos={pos} i={i}");
            }
        }
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(LayerKind::VProj.name(), "V_PROJ");
        assert_eq!(LayerKind::DownProj.name(), "DOWN_PROJ");
        assert_eq!(LayerKind::ALL.len(), 9);
    }
}
