//! The two MLP variants of Fig. 1.

use crate::config::{Activation, ArchStyle, LayerKind, ModelConfig};
use crate::hooks::{HookKind, TapCtx, TapList, TapPoint};
use crate::scratch::MlpScratch;
use crate::weights::BlockWeights;
use ft2_tensor::{gelu_inplace, ops::mul_inplace, relu_inplace, silu_inplace, Matrix};

fn activate(act: Activation, m: &mut Matrix) {
    match act {
        Activation::Relu => relu_inplace(m),
        Activation::Gelu => gelu_inplace(m),
        Activation::Silu => silu_inplace(m),
    }
}

/// Run the block's MLP on `x` (`[n, hidden] -> [n, hidden]`), firing taps
/// after every linear layer.
///
/// Compatibility wrapper over [`mlp_forward_into`] with fresh scratch.
pub fn mlp_forward(
    config: &ModelConfig,
    weights: &BlockWeights,
    block_idx: usize,
    x: &Matrix,
    start_pos: usize,
    step: usize,
    taps: &mut TapList<'_>,
) -> Matrix {
    let mut scratch = MlpScratch::default();
    mlp_forward_into(config, weights, block_idx, x, start_pos, step, taps, &mut scratch);
    scratch.out
}

/// [`mlp_forward`] writing all intermediates into caller-owned scratch;
/// the result lands in `scratch.out`.
#[allow(clippy::too_many_arguments)]
pub fn mlp_forward_into(
    config: &ModelConfig,
    weights: &BlockWeights,
    block_idx: usize,
    x: &Matrix,
    start_pos: usize,
    step: usize,
    taps: &mut TapList<'_>,
    scratch: &mut MlpScratch,
) {
    let dtype = config.dtype;
    let ctx = |layer: LayerKind| TapCtx {
        point: TapPoint {
            block: block_idx,
            layer,
        },
        hook: HookKind::LinearOutput,
        step,
        first_pos: start_pos,
        dtype,
    };
    let act_ctx = |layer: LayerKind| TapCtx {
        point: TapPoint {
            block: block_idx,
            layer,
        },
        hook: HookKind::ActivationOutput,
        step,
        first_pos: start_pos,
        dtype,
    };

    match config.style {
        ArchStyle::OptStyle => {
            let (fc1, fc2) = weights.fc.as_ref().expect("OPT-style block without FC");
            fc1.forward_into(x, dtype, &mut scratch.h);
            taps.fire(&ctx(LayerKind::Fc1), &mut scratch.h);
            activate(config.activation, &mut scratch.h);
            taps.fire(&act_ctx(LayerKind::Fc1), &mut scratch.h);
            fc2.forward_into(&scratch.h, dtype, &mut scratch.out);
            taps.fire(&ctx(LayerKind::Fc2), &mut scratch.out);
        }
        ArchStyle::LlamaStyle => {
            let (gate, up, down) = weights
                .gated
                .as_ref()
                .expect("Llama-style block without gated MLP");
            gate.forward_into(x, dtype, &mut scratch.h);
            taps.fire(&ctx(LayerKind::GateProj), &mut scratch.h);
            up.forward_into(x, dtype, &mut scratch.up);
            taps.fire(&ctx(LayerKind::UpProj), &mut scratch.up);
            activate(config.activation, &mut scratch.h);
            taps.fire(&act_ctx(LayerKind::GateProj), &mut scratch.h);
            mul_inplace(&mut scratch.h, &scratch.up);
            down.forward_into(&scratch.h, dtype, &mut scratch.out);
            taps.fire(&ctx(LayerKind::DownProj), &mut scratch.out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::hooks::RecordingTap;
    use crate::weights::ModelWeights;

    #[test]
    fn opt_mlp_fires_fc_taps_in_order() {
        let config = ModelConfig::tiny_opt();
        let weights = ModelWeights::build(&config);
        let mut rec = RecordingTap::all();
        let mut taps = TapList::new();
        taps.push(&mut rec);
        let x = Matrix::from_fn(2, config.hidden, |_, c| (c % 3) as f32 * 0.3);
        let y = mlp_forward(&config, &weights.blocks[0], 0, &x, 0, 0, &mut taps);
        drop(taps);
        assert_eq!(y.rows(), 2);
        assert_eq!(y.cols(), config.hidden);
        let kinds: Vec<LayerKind> = rec.captures.iter().map(|(c, _)| c.point.layer).collect();
        assert_eq!(kinds, vec![LayerKind::Fc1, LayerKind::Fc2]);
        // FC1 capture has ffn columns worth of data.
        assert_eq!(rec.captures[0].1.len(), 2 * config.ffn);
    }

    #[test]
    fn llama_mlp_fires_gate_up_down() {
        let config = ModelConfig::tiny_llama();
        let weights = ModelWeights::build(&config);
        let mut rec = RecordingTap::all();
        let mut taps = TapList::new();
        taps.push(&mut rec);
        let x = Matrix::from_fn(1, config.hidden, |_, c| ((c * 7) % 5) as f32 * 0.2 - 0.4);
        let _ = mlp_forward(&config, &weights.blocks[0], 0, &x, 0, 0, &mut taps);
        drop(taps);
        let kinds: Vec<LayerKind> = rec.captures.iter().map(|(c, _)| c.point.layer).collect();
        assert_eq!(
            kinds,
            vec![LayerKind::GateProj, LayerKind::UpProj, LayerKind::DownProj]
        );
    }

    #[test]
    fn gated_mlp_is_gate_times_up() {
        // With a zero up-projection, the MLP output must be exactly zero
        // regardless of the gate (down(0) = 0, no bias in llama style).
        let config = ModelConfig::tiny_llama();
        let mut weights = ModelWeights::build(&config);
        {
            let (_, up, _) = weights.blocks[0].gated.as_mut().unwrap();
            for v in up.weight.as_mut_slice() {
                *v = 0.0;
            }
        }
        let mut taps = TapList::new();
        let x = Matrix::from_fn(1, config.hidden, |_, c| c as f32 * 0.01);
        let y = mlp_forward(&config, &weights.blocks[0], 0, &x, 0, 0, &mut taps);
        assert!(y.as_slice().iter().all(|&v| v == 0.0));
    }
}
