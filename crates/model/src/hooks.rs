//! The layer-output hook mechanism.
//!
//! Mirrors PyTorch's `register_forward_hook`, which the paper's fault
//! injector and protection functions are built on: after every linear layer
//! produces (and stores) its output, each registered tap may observe and
//! mutate the output matrix in registration order. The fault injector is
//! registered *before* the protector, so a fresh fault is visible to the
//! range check of the same layer — matching the paper's post-layer
//! protection semantics.

use crate::config::LayerKind;
use ft2_tensor::{DType, Matrix};

/// Identifies one linear layer instance in the model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TapPoint {
    /// Decoder block index, `0..config.blocks`.
    pub block: usize,
    /// Which linear layer inside the block.
    pub layer: LayerKind,
}

/// What kind of tensor a hook observes. Fault injection targets only
/// [`HookKind::LinearOutput`] (the paper injects into linear layers);
/// Ranger-style protection attaches to [`HookKind::ActivationOutput`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum HookKind {
    /// The freshly stored output of the linear layer named in `TapPoint`.
    LinearOutput,
    /// The output of the MLP activation that *follows* the linear layer
    /// named in `TapPoint` (`FC1` for OPT-style, `GATE_PROJ` for
    /// Llama-style).
    ActivationOutput,
}

/// Context handed to taps along with the mutable layer output.
#[derive(Clone, Copy, Debug)]
pub struct TapCtx {
    /// The layer that produced this output.
    pub point: TapPoint,
    /// Whether this is a linear output or the following activation output.
    pub hook: HookKind,
    /// Generation step: `0` is the prefill (first-token) step, `t >= 1` is
    /// the decode step producing token `t+1`.
    pub step: usize,
    /// Sequence position of the first row of the output matrix (prefill
    /// covers positions `0..prompt_len`; decode steps a single position).
    pub first_pos: usize,
    /// Storage precision of the output (faults corrupt this format).
    pub dtype: DType,
}

/// Severity classification of one generation step, produced by taps that
/// correct anomalies (the protection tap). The engine's recovery loop acts
/// on the merged verdict of all taps after each decode step.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum AnomalyVerdict {
    /// No anomaly was detected this step.
    #[default]
    Clean,
    /// Anomalies were detected and corrected within the detection budget;
    /// the corrected state is trusted.
    Corrected,
    /// The detector fired past its budget (or saw a severe excursion) — the
    /// hidden state is likely corrupted beyond what clamping repairs, and
    /// the step is a rollback candidate.
    Storm,
}

/// Widest decoder-block count across the model zoo (OPT-6.7B-class configs
/// top out at 32 blocks). Sized as a fixed array so [`StepReport`] stays
/// `Copy` and allocation-free on the per-step hot path; deeper blocks fold
/// into the last slot.
pub const MAX_BLOCK_HITS: usize = 32;

/// What a tap observed (and corrected) during one generation step.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StepReport {
    /// Out-of-bound values clamped/zeroed this step.
    pub clamps: u64,
    /// NaN values corrected this step.
    pub nans: u64,
    /// The tap's severity verdict for the step.
    pub verdict: AnomalyVerdict,
    /// Anomalies attributed per decoder block this step (corrections
    /// applied by protection taps, strikes recorded by injector taps),
    /// indexed by block; blocks `>= MAX_BLOCK_HITS` fold into the last
    /// slot. Drives the per-layer heatmap of the live event stream.
    pub block_hits: [u32; MAX_BLOCK_HITS],
}

impl StepReport {
    /// Total corrections applied this step.
    pub fn corrections(&self) -> u64 {
        self.clamps + self.nans
    }

    /// Record one correction against `block` (saturating; deep blocks fold
    /// into the last slot).
    pub fn record_block_hit(&mut self, block: usize) {
        let slot = block.min(MAX_BLOCK_HITS - 1);
        self.block_hits[slot] = self.block_hits[slot].saturating_add(1);
    }

    /// Blocks with at least one correction this step, as `(block, hits)`.
    pub fn hit_blocks(&self) -> impl Iterator<Item = (usize, u32)> + '_ {
        self.block_hits
            .iter()
            .enumerate()
            .filter(|(_, &h)| h > 0)
            .map(|(b, &h)| (b, h))
    }

    /// Merge another tap's report: counts add, the verdict takes the
    /// maximum severity.
    pub fn merge(&mut self, other: &StepReport) {
        self.clamps += other.clamps;
        self.nans += other.nans;
        self.verdict = self.verdict.max(other.verdict);
        for (mine, theirs) in self.block_hits.iter_mut().zip(other.block_hits.iter()) {
            *mine = mine.saturating_add(*theirs);
        }
    }
}

/// A forward hook on linear-layer outputs.
pub trait LayerTap {
    /// Observe and possibly mutate the freshly-stored output of a linear
    /// layer. `data` has one row per sequence position processed this step
    /// and `out_features` columns.
    fn on_output(&mut self, ctx: &TapCtx, data: &mut Matrix);

    /// Called by the engine after the forward pass of `step` completes.
    /// Taps that accumulate per-step anomaly counters report (and reset)
    /// them here; the default is a clean report.
    fn end_step(&mut self, _step: usize) -> StepReport {
        StepReport::default()
    }

    /// Called when the engine rolls back `step` for re-decode `attempt`
    /// (0-based). Protection taps escalate here; most taps ignore it.
    fn on_rollback(&mut self, _step: usize, _attempt: u32) {}
}

/// An ordered list of taps, applied in registration order.
#[derive(Default)]
pub struct TapList<'a> {
    taps: Vec<&'a mut dyn LayerTap>,
}

impl<'a> TapList<'a> {
    /// Empty tap list.
    pub fn new() -> Self {
        TapList { taps: Vec::new() }
    }

    /// Register a tap; later registrations run after earlier ones.
    pub fn push(&mut self, tap: &'a mut dyn LayerTap) -> &mut Self {
        self.taps.push(tap);
        self
    }

    /// Number of registered taps.
    pub fn len(&self) -> usize {
        self.taps.len()
    }

    /// True when no taps are registered.
    pub fn is_empty(&self) -> bool {
        self.taps.is_empty()
    }

    /// Run all taps on a layer output.
    pub fn fire(&mut self, ctx: &TapCtx, data: &mut Matrix) {
        for tap in &mut self.taps {
            tap.on_output(ctx, data);
        }
    }

    /// End-of-step notification: merge every tap's [`StepReport`] (counts
    /// add, verdict takes the maximum severity).
    pub fn end_step(&mut self, step: usize) -> StepReport {
        let mut report = StepReport::default();
        for tap in &mut self.taps {
            report.merge(&tap.end_step(step));
        }
        report
    }

    /// Tell every tap the engine is rolling back `step` for re-decode
    /// `attempt`.
    pub fn notify_rollback(&mut self, step: usize, attempt: u32) {
        for tap in &mut self.taps {
            tap.on_rollback(step, attempt);
        }
    }
}

/// The no-op tap set for clean (unfaulted, unprotected) runs.
pub struct NoTaps;

impl LayerTap for NoTaps {
    fn on_output(&mut self, _ctx: &TapCtx, _data: &mut Matrix) {}
}

/// A recording tap that captures layer outputs for analysis (used by the
/// value-distribution figures and by offline bound profiling).
pub struct RecordingTap {
    /// Captured `(ctx, flattened output)` pairs.
    pub captures: Vec<(TapCtx, Vec<f32>)>,
    /// Restrict capture to one block (None = all).
    pub only_block: Option<usize>,
    /// Capture only linear outputs (default), or activations too.
    pub linear_only: bool,
}

impl Default for RecordingTap {
    fn default() -> Self {
        RecordingTap {
            captures: Vec::new(),
            only_block: None,
            linear_only: true,
        }
    }
}

impl RecordingTap {
    /// Record every linear-layer output.
    pub fn all() -> Self {
        Self::default()
    }

    /// Record only layers of the given block.
    pub fn for_block(block: usize) -> Self {
        RecordingTap {
            only_block: Some(block),
            ..Self::default()
        }
    }

    /// Also capture activation outputs.
    pub fn including_activations(mut self) -> Self {
        self.linear_only = false;
        self
    }
}

impl LayerTap for RecordingTap {
    fn on_output(&mut self, ctx: &TapCtx, data: &mut Matrix) {
        if self.linear_only && ctx.hook != HookKind::LinearOutput {
            return;
        }
        if let Some(b) = self.only_block {
            if ctx.point.block != b {
                return;
            }
        }
        self.captures.push((*ctx, data.as_slice().to_vec()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct AddOne;
    impl LayerTap for AddOne {
        fn on_output(&mut self, _ctx: &TapCtx, data: &mut Matrix) {
            for v in data.as_mut_slice() {
                *v += 1.0;
            }
        }
    }

    struct Double;
    impl LayerTap for Double {
        fn on_output(&mut self, _ctx: &TapCtx, data: &mut Matrix) {
            for v in data.as_mut_slice() {
                *v *= 2.0;
            }
        }
    }

    fn ctx() -> TapCtx {
        TapCtx {
            point: TapPoint {
                block: 0,
                layer: LayerKind::VProj,
            },
            hook: HookKind::LinearOutput,
            step: 0,
            first_pos: 0,
            dtype: DType::F32,
        }
    }

    #[test]
    fn taps_run_in_registration_order() {
        let mut add = AddOne;
        let mut dbl = Double;
        let mut taps = TapList::new();
        taps.push(&mut add).push(&mut dbl);
        let mut m = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        taps.fire(&ctx(), &mut m);
        // (x + 1) * 2, not x * 2 + 1.
        assert_eq!(m.as_slice(), &[4.0, 6.0]);
    }

    #[test]
    fn recording_tap_filters_by_block() {
        let mut rec = RecordingTap::for_block(1);
        let mut taps = TapList::new();
        taps.push(&mut rec);
        let mut m = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        let mut c = ctx();
        taps.fire(&c, &mut m); // block 0: filtered out
        c.point.block = 1;
        taps.fire(&c, &mut m); // block 1: captured
        drop(taps);
        assert_eq!(rec.captures.len(), 1);
        assert_eq!(rec.captures[0].1, vec![3.0, 4.0]);
    }

    struct Stormy;
    impl LayerTap for Stormy {
        fn on_output(&mut self, _ctx: &TapCtx, _data: &mut Matrix) {}
        fn end_step(&mut self, _step: usize) -> StepReport {
            let mut r = StepReport {
                clamps: 3,
                nans: 1,
                verdict: AnomalyVerdict::Storm,
                ..StepReport::default()
            };
            r.record_block_hit(2);
            r
        }
    }

    #[test]
    fn end_step_merges_counts_and_takes_max_verdict() {
        let mut quiet = AddOne; // default end_step: clean
        let mut loud = Stormy;
        let mut taps = TapList::new();
        taps.push(&mut quiet).push(&mut loud);
        let report = taps.end_step(2);
        assert_eq!(report.clamps, 3);
        assert_eq!(report.nans, 1);
        assert_eq!(report.corrections(), 4);
        assert_eq!(report.verdict, AnomalyVerdict::Storm);
        assert_eq!(report.hit_blocks().collect::<Vec<_>>(), vec![(2, 1)]);
    }

    #[test]
    fn block_hits_merge_elementwise_and_fold_deep_blocks() {
        let mut a = StepReport::default();
        a.record_block_hit(0);
        a.record_block_hit(2);
        let mut b = StepReport::default();
        b.record_block_hit(2);
        b.record_block_hit(MAX_BLOCK_HITS + 7); // folds into the last slot
        a.merge(&b);
        assert_eq!(
            a.hit_blocks().collect::<Vec<_>>(),
            vec![(0, 1), (2, 2), (MAX_BLOCK_HITS - 1, 1)]
        );
    }

    #[test]
    fn verdict_severity_is_ordered() {
        assert!(AnomalyVerdict::Clean < AnomalyVerdict::Corrected);
        assert!(AnomalyVerdict::Corrected < AnomalyVerdict::Storm);
        let mut r = StepReport::default();
        r.merge(&StepReport {
            clamps: 1,
            nans: 0,
            verdict: AnomalyVerdict::Corrected,
            ..StepReport::default()
        });
        assert_eq!(r.verdict, AnomalyVerdict::Corrected);
        r.merge(&StepReport::default()); // clean merge cannot downgrade
        assert_eq!(r.verdict, AnomalyVerdict::Corrected);
    }

    #[test]
    fn empty_taplist_is_noop() {
        let mut taps = TapList::new();
        assert!(taps.is_empty());
        let mut m = Matrix::from_vec(1, 1, vec![5.0]);
        taps.fire(&ctx(), &mut m);
        assert_eq!(m.get(0, 0), 5.0);
    }
}
