//! The model zoo: seven simulator stand-ins for the models of Table 2.
//!
//! Each entry pairs (a) a scaled-down simulator configuration whose
//! architecture topology matches the real model (Fig. 1) and whose weight
//! statistics are shaped per `weights.rs`, with (b) the *paper-scale*
//! dimensions of the real checkpoint, which `ft2-hw` uses for
//! FLOP-accurate timing estimates (Figs. 4 and 10).

use crate::config::{Activation, ArchStyle, ModelConfig, NormKind};
use crate::engine::Model;
use ft2_tensor::DType;

/// Paper-scale dimensions of the real model a zoo entry stands in for.
#[derive(Clone, Copy, Debug)]
pub struct PaperScale {
    /// Hidden dimension of the real model.
    pub hidden: usize,
    /// Number of decoder blocks.
    pub blocks: usize,
    /// MLP intermediate dimension.
    pub ffn: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Total parameter count.
    pub params: f64,
}

/// One zoo entry.
#[derive(Clone, Debug)]
pub struct ModelSpec {
    /// Simulator configuration (scaled down, same topology).
    pub config: ModelConfig,
    /// Real-model dimensions for timing estimation.
    pub paper: PaperScale,
    /// Whether the paper evaluates this model on the math task (only
    /// Llama2-7B and Qwen2-7B answer GSM8K well enough).
    pub supports_math: bool,
}

impl ModelSpec {
    /// Instantiate the simulator model (builds the synthetic checkpoint).
    pub fn build(&self) -> Model {
        Model::new(self.config.clone())
    }

    /// Model name, e.g. `"OPT-6.7B"`.
    pub fn name(&self) -> &str {
        &self.config.name
    }
}

/// Identifier for a zoo model, used by the harness CLI.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ZooModel {
    /// OPT-6.7B stand-in.
    Opt6_7B,
    /// OPT-2.7B stand-in.
    Opt2_7B,
    /// GPT-J-6B stand-in.
    GptJ6B,
    /// Llama2-7B stand-in.
    Llama2_7B,
    /// Vicuna-7B (v1.5) stand-in.
    Vicuna7B,
    /// Qwen2-7B stand-in.
    Qwen2_7B,
    /// Qwen2-1.5B stand-in.
    Qwen2_1_5B,
}

impl ZooModel {
    /// All models in Table 2 order.
    pub const ALL: [ZooModel; 7] = [
        ZooModel::Opt6_7B,
        ZooModel::Opt2_7B,
        ZooModel::GptJ6B,
        ZooModel::Llama2_7B,
        ZooModel::Vicuna7B,
        ZooModel::Qwen2_7B,
        ZooModel::Qwen2_1_5B,
    ];

    /// The spec for this model.
    pub fn spec(self) -> ModelSpec {
        spec_for(self)
    }

    /// Parse a CLI name such as `"opt-6.7b"` or `"Llama2-7B"`.
    pub fn parse(s: &str) -> Option<ZooModel> {
        let k = s.to_ascii_lowercase().replace(['_', ' '], "-");
        Some(match k.as_str() {
            "opt-6.7b" => ZooModel::Opt6_7B,
            "opt-2.7b" => ZooModel::Opt2_7B,
            "gptj-6b" | "gpt-j-6b" => ZooModel::GptJ6B,
            "llama2-7b" | "llama-2-7b" => ZooModel::Llama2_7B,
            "vicuna-7b" => ZooModel::Vicuna7B,
            "qwen2-7b" => ZooModel::Qwen2_7B,
            "qwen2-1.5b" => ZooModel::Qwen2_1_5B,
            _ => return None,
        })
    }
}

fn opt_config(name: &str, hidden: usize, blocks: usize, seed: u64, act: Activation) -> ModelConfig {
    ModelConfig {
        name: name.into(),
        style: ArchStyle::OptStyle,
        hidden,
        heads: hidden / 16,
        blocks,
        ffn: hidden * 4,
        vocab: 512,
        max_seq: 160,
        activation: act,
        norm: NormKind::LayerNorm,
        bias: true,
        dtype: DType::F16,
        seed,
        paper_params: 0.0, // overwritten by spec_for
    }
}

fn llama_config(name: &str, hidden: usize, blocks: usize, seed: u64) -> ModelConfig {
    ModelConfig {
        name: name.into(),
        style: ArchStyle::LlamaStyle,
        hidden,
        heads: hidden / 16,
        blocks,
        ffn: hidden * 8 / 3,
        vocab: 512,
        max_seq: 160,
        activation: Activation::Silu,
        norm: NormKind::RmsNorm,
        bias: false,
        dtype: DType::F16,
        seed,
        paper_params: 0.0,
    }
}

fn spec_for(m: ZooModel) -> ModelSpec {
    let (mut config, paper, math) = match m {
        ZooModel::Opt6_7B => (
            opt_config("OPT-6.7B", 64, 4, 0x0667, Activation::Relu),
            PaperScale {
                hidden: 4096,
                blocks: 32,
                ffn: 16384,
                vocab: 50272,
                params: 6.66e9,
            },
            false,
        ),
        ZooModel::Opt2_7B => (
            opt_config("OPT-2.7B", 48, 4, 0x0267, Activation::Relu),
            PaperScale {
                hidden: 2560,
                blocks: 32,
                ffn: 10240,
                vocab: 50272,
                params: 2.65e9,
            },
            false,
        ),
        ZooModel::GptJ6B => (
            opt_config("GPTJ-6B", 64, 4, 0x6055, Activation::Gelu),
            PaperScale {
                hidden: 4096,
                blocks: 28,
                ffn: 16384,
                vocab: 50400,
                params: 6.05e9,
            },
            false,
        ),
        ZooModel::Llama2_7B => (
            llama_config("Llama2-7B", 64, 4, 0x11A2),
            PaperScale {
                hidden: 4096,
                blocks: 32,
                ffn: 11008,
                vocab: 32000,
                params: 6.74e9,
            },
            true,
        ),
        ZooModel::Vicuna7B => (
            llama_config("Vicuna-7B", 64, 4, 0x71C0),
            PaperScale {
                hidden: 4096,
                blocks: 32,
                ffn: 11008,
                vocab: 32000,
                params: 6.74e9,
            },
            false,
        ),
        ZooModel::Qwen2_7B => (
            llama_config("Qwen2-7B", 64, 4, 0x0727),
            PaperScale {
                hidden: 3584,
                blocks: 28,
                ffn: 18944,
                vocab: 152064,
                params: 7.62e9,
            },
            true,
        ),
        ZooModel::Qwen2_1_5B => (
            llama_config("Qwen2-1.5B", 48, 3, 0x0157),
            PaperScale {
                hidden: 1536,
                blocks: 28,
                ffn: 8960,
                vocab: 151936,
                params: 1.54e9,
            },
            false,
        ),
    };
    config.paper_params = paper.params;
    ModelSpec {
        config,
        paper,
        supports_math: math,
    }
}

/// All seven zoo specs in Table 2 order.
pub fn model_zoo() -> Vec<ModelSpec> {
    ZooModel::ALL.iter().map(|&m| m.spec()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LayerKind;

    #[test]
    fn zoo_has_seven_models_matching_table2() {
        let zoo = model_zoo();
        assert_eq!(zoo.len(), 7);
        let names: Vec<&str> = zoo.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec![
                "OPT-6.7B",
                "OPT-2.7B",
                "GPTJ-6B",
                "Llama2-7B",
                "Vicuna-7B",
                "Qwen2-7B",
                "Qwen2-1.5B"
            ]
        );
        // Only Llama2-7B and Qwen2-7B do math.
        let math: Vec<&str> = zoo
            .iter()
            .filter(|s| s.supports_math)
            .map(|s| s.name())
            .collect();
        assert_eq!(math, vec!["Llama2-7B", "Qwen2-7B"]);
    }

    #[test]
    fn architectures_match_fig1() {
        let zoo = model_zoo();
        for spec in &zoo {
            match spec.name() {
                "OPT-6.7B" | "OPT-2.7B" | "GPTJ-6B" => {
                    assert_eq!(spec.config.style, ArchStyle::OptStyle);
                    assert!(spec.config.block_layers().contains(&LayerKind::Fc1));
                }
                _ => {
                    assert_eq!(spec.config.style, ArchStyle::LlamaStyle);
                    assert!(spec.config.block_layers().contains(&LayerKind::UpProj));
                }
            }
        }
    }

    #[test]
    fn paper_params_are_wired() {
        for spec in model_zoo() {
            assert!(spec.config.paper_params > 1e9);
            assert_eq!(spec.config.paper_params, spec.paper.params);
        }
    }

    #[test]
    fn seeds_differ_so_checkpoints_differ() {
        let seeds: Vec<u64> = model_zoo().iter().map(|s| s.config.seed).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len());
    }

    #[test]
    fn parse_names() {
        assert_eq!(ZooModel::parse("opt-6.7b"), Some(ZooModel::Opt6_7B));
        assert_eq!(ZooModel::parse("Llama2-7B"), Some(ZooModel::Llama2_7B));
        assert_eq!(ZooModel::parse("qwen2_1.5b"), Some(ZooModel::Qwen2_1_5B));
        assert_eq!(ZooModel::parse("nonexistent"), None);
    }

    #[test]
    fn zoo_models_generate() {
        // Every zoo model must produce deterministic output.
        for spec in model_zoo() {
            let model = spec.build();
            let mut taps = crate::hooks::TapList::new();
            let out = model.generate(&[1, 2, 3, 4, 5], 6, &mut taps);
            assert_eq!(out.tokens.len(), 6, "model {}", spec.name());
        }
    }
}
