//! Campaign engine invariants against live models.

use ft2_fault::{
    Campaign, CampaignConfig, ExactJudge, FaultModel, Outcome, OutcomeJudge, StepFilter,
    StepWeighting, Unprotected,
};
use ft2_model::{Model, ModelConfig};
use ft2_parallel::WorkStealingPool;

fn inputs() -> Vec<Vec<u32>> {
    vec![
        vec![1, 22, 33, 44, 5],
        vec![80, 70, 60, 50],
        vec![9, 8, 7, 6, 5, 4],
    ]
}

fn cfg(fm: FaultModel) -> CampaignConfig {
    CampaignConfig {
        trials_per_input: 16,
        gen_tokens: 8,
        ..CampaignConfig::quick(fm)
    }
}

#[test]
fn masked_identical_dominates_mantissa_faults() {
    // Single-bit faults hit mantissa bits 10/16 of the time; most of those
    // leave the output bit-identical. The masked-identical share must be
    // the majority under the 1-bit model.
    let model = Model::new(ModelConfig::tiny_opt());
    let pool = WorkStealingPool::new(2);
    let ins = inputs();
    let judge = ExactJudge;
    let mut c = cfg(FaultModel::SingleBit);
    c.trials_per_input = 80;
    let campaign = Campaign::new(&model, &ins, &judge, c, &pool);
    let r = campaign.run(&Unprotected, &pool);
    assert!(
        r.counts.masked_identical * 2 > r.counts.total(),
        "masked-identical must dominate: {:?}",
        r.counts
    );
}

#[test]
fn per_bit_class_totals_are_consistent() {
    let model = Model::new(ModelConfig::tiny_llama());
    let pool = WorkStealingPool::new(2);
    let ins = inputs();
    let judge = ExactJudge;
    let campaign = Campaign::new(&model, &ins, &judge, cfg(FaultModel::SingleBit), &pool);
    let r = campaign.run(&Unprotected, &pool);
    let by_class: u64 = r.per_bit_class.values().map(|c| c.total()).sum();
    assert_eq!(by_class, r.counts.total());
    // Single-bit over f16: mantissa 10/16, exponent 5/16, sign 1/16.
    let mant = r.per_bit_class.get("mantissa").map(|c| c.total()).unwrap_or(0);
    assert!(mant as f64 > 0.4 * r.counts.total() as f64);
}

#[test]
fn exp_model_hits_only_exponent_bits() {
    let model = Model::new(ModelConfig::tiny_opt());
    let pool = WorkStealingPool::new(1);
    let ins = inputs();
    let judge = ExactJudge;
    let campaign = Campaign::new(
        &model,
        &ins,
        &judge,
        cfg(FaultModel::ExponentBit),
        &pool,
    );
    let r = campaign.run(&Unprotected, &pool);
    assert_eq!(r.per_bit_class.len(), 1);
    assert!(r.per_bit_class.contains_key("exponent"));
}

#[test]
fn following_tokens_filter_never_hits_step0() {
    let model = Model::new(ModelConfig::tiny_opt());
    let pool = WorkStealingPool::new(2);
    let ins = inputs();
    let judge = ExactJudge;
    let mut c = cfg(FaultModel::SingleBit);
    c.step_filter = StepFilter::FollowingTokensOnly;
    let campaign = Campaign::new(&model, &ins, &judge, c, &pool);
    let r = campaign.run(&Unprotected, &pool);
    assert_eq!(r.first_token_faults.total(), 0);
}

#[test]
fn different_seeds_give_different_fault_sets() {
    let model = Model::new(ModelConfig::tiny_opt());
    let pool = WorkStealingPool::new(2);
    let ins = inputs();
    let judge = ExactJudge;
    let mut a_cfg = cfg(FaultModel::ExponentBit);
    a_cfg.seed = 1;
    let mut b_cfg = cfg(FaultModel::ExponentBit);
    b_cfg.seed = 2;
    let a = Campaign::new(&model, &ins, &judge, a_cfg, &pool).run(&Unprotected, &pool);
    let b = Campaign::new(&model, &ins, &judge, b_cfg, &pool).run(&Unprotected, &pool);
    // Totals equal, per-layer distribution almost surely differs.
    assert_eq!(a.counts.total(), b.counts.total());
    assert_ne!(a.per_layer, b.per_layer);
}

#[test]
fn custom_judge_is_respected() {
    // A judge that calls everything an SDC yields a 100% SDC rate.
    struct Paranoid;
    impl OutcomeJudge for Paranoid {
        fn classify(&self, _r: &[u32], _f: &[u32]) -> Outcome {
            Outcome::Sdc
        }
    }
    let model = Model::new(ModelConfig::tiny_opt());
    let pool = WorkStealingPool::new(1);
    let ins = inputs();
    let campaign = Campaign::new(
        &model,
        &ins,
        &Paranoid,
        cfg(FaultModel::SingleBit),
        &pool,
    );
    let r = campaign.run(&Unprotected, &pool);
    assert_eq!(r.sdc_rate(), 1.0);
}

#[test]
fn computation_weighting_is_config_driven() {
    let model = Model::new(ModelConfig::tiny_opt());
    let pool = WorkStealingPool::new(2);
    let ins = inputs();
    let judge = ExactJudge;
    let mut c = cfg(FaultModel::SingleBit);
    c.trials_per_input = 120;
    c.step_weighting = StepWeighting::ByTime { prefill_factor: 4.0 };
    let campaign = Campaign::new(&model, &ins, &judge, c, &pool);
    let r = campaign.run(&Unprotected, &pool);
    // 8 steps: prefill weight 4 of 11 => ~36% of faults in step 0.
    let share = r.first_token_faults.total() as f64 / r.counts.total() as f64;
    assert!((share - 4.0 / 11.0).abs() < 0.08, "share {share}");
}
