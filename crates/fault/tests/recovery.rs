//! End-to-end detect–escalate–recover invariants.
//!
//! These tests drive full campaigns with a real protection scheme
//! (`ft2-core` is a dev-dependency here precisely for this), so they check
//! the acceptance criterion directly: with the same seed and config, a
//! recovery-enabled campaign must show strictly fewer SDCs than the
//! recovery-disabled one, and the difference must be accounted for by the
//! recovered / recovery-failed counters.

use ft2_core::{Scheme, SchemeFactory};
use ft2_fault::{Campaign, CampaignConfig, FaultModel, Outcome, StepFilter};
use ft2_model::{Model, ModelConfig, RecoveryPolicy, TapList};
use ft2_parallel::WorkStealingPool;

fn inputs() -> Vec<Vec<u32>> {
    vec![
        vec![3, 1, 4, 1, 5, 9, 2, 6],
        vec![27, 18, 28, 18, 28],
        vec![7, 7, 7, 42],
    ]
}

fn cfg(fault_model: FaultModel, recovery_retries: u32) -> CampaignConfig {
    CampaignConfig {
        trials_per_input: 40,
        gen_tokens: 10,
        step_filter: StepFilter::FollowingTokensOnly,
        recovery_retries,
        ..CampaignConfig::quick(fault_model)
    }
}

#[test]
fn recovery_strictly_reduces_sdc_with_accounted_difference() {
    let model = Model::new(ModelConfig::tiny_opt());
    let ins = inputs();
    let judge = ExactTokens;
    let pool = WorkStealingPool::new(4);
    let ft2 = SchemeFactory::new(Scheme::Ft2, model.config(), None);

    let baseline = Campaign::new(&model, &ins, &judge, cfg(FaultModel::ExponentBit, 0), &pool)
        .run(&ft2, &pool);
    let recovered = Campaign::new(&model, &ins, &judge, cfg(FaultModel::ExponentBit, 2), &pool)
        .run(&ft2, &pool);

    // Same trial population either way.
    assert_eq!(baseline.counts.total(), recovered.counts.total());
    // Recovery must actually fire and actively survive faults.
    assert!(
        recovered.counts.recovered > 0,
        "expected recovered trials, got counts {:?}",
        recovered.counts
    );
    assert!(recovered.rollbacks > 0);
    assert!(recovered.storms > 0);
    // Strictly fewer silent corruptions with recovery on.
    assert!(
        recovered.counts.sdc < baseline.counts.sdc,
        "recovery did not reduce SDC: baseline {} vs recovered {}",
        baseline.counts.sdc,
        recovered.counts.sdc
    );
    // The SDC reduction is accounted for by trials that moved into the
    // recovered / recovery-failed buckets (some recovered trials may come
    // out of the masked bucket instead, so <=, not ==).
    let moved = baseline.counts.sdc - recovered.counts.sdc;
    assert!(
        moved <= recovered.counts.recovered + recovered.counts.recovery_failed,
        "SDC delta {} exceeds recovery counters {:?}",
        moved,
        recovered.counts
    );
    // The disabled run never rolls back and never flags recovery outcomes.
    assert_eq!(baseline.rollbacks, 0);
    assert_eq!(baseline.counts.recovered, 0);
    assert_eq!(baseline.counts.recovery_failed, 0);
}

#[test]
fn recovery_campaign_is_thread_count_invariant() {
    let model = Model::new(ModelConfig::tiny_llama());
    let ins = inputs();
    let judge = ExactTokens;
    let ft2 = SchemeFactory::new(Scheme::Ft2, model.config(), None);
    let config = CampaignConfig {
        trials_per_input: 12,
        gen_tokens: 8,
        recovery_retries: 2,
        ..CampaignConfig::quick(FaultModel::ExponentBit)
    };

    let pool1 = WorkStealingPool::new(1);
    let r1 = Campaign::new(&model, &ins, &judge, config.clone(), &pool1).run(&ft2, &pool1);
    let pool4 = WorkStealingPool::new(4);
    let r4 = Campaign::new(&model, &ins, &judge, config, &pool4).run(&ft2, &pool4);

    assert_eq!(r1.counts, r4.counts);
    assert_eq!(r1.rollbacks, r4.rollbacks);
    assert_eq!(r1.storms, r4.storms);
}

#[test]
fn first_token_fault_cannot_disable_protection() {
    // A fault during the profiling (first) token used to poison the learned
    // bounds: a huge |value| became the recorded max, so no later excursion
    // was ever out of bounds. The integrity guard replaces implausible
    // bounds with the static architectural prior at the end of step 0, so
    // later out-of-range values still clamp. Check the end-to-end effect:
    // first-token-only campaigns under FT2 keep a sane masked rate instead
    // of degenerating to the unprotected outcome distribution.
    let model = Model::new(ModelConfig::tiny_opt());
    let ins = inputs();
    let judge = ExactTokens;
    let pool = WorkStealingPool::new(4);
    let ft2 = SchemeFactory::new(Scheme::Ft2, model.config(), None);
    let config = CampaignConfig {
        trials_per_input: 40,
        gen_tokens: 10,
        step_filter: StepFilter::FirstTokenOnly,
        ..CampaignConfig::quick(FaultModel::ExponentBit)
    };
    let result = Campaign::new(&model, &ins, &judge, config, &pool).run(&ft2, &pool);

    // Every trial faulted the profiling token, yet protection still works:
    // the campaign must mask a clear majority of exponent-bit faults. An
    // unprotected / bound-poisoned run fails this by a wide margin.
    let masked = result.counts.masked_identical + result.counts.masked_semantic;
    assert!(
        masked * 2 > result.counts.total(),
        "first-token faults degraded protection: {:?}",
        result.counts
    );
}

#[test]
fn fault_free_generation_never_rolls_back() {
    // Recovery must be inert on clean inference: no storms, no rollbacks,
    // and the token stream identical to the recovery-disabled path.
    let model = Model::new(ModelConfig::tiny_llama());
    let ft2 = SchemeFactory::new(Scheme::Ft2, model.config(), None);
    let prompt = vec![5u32, 11, 17, 23];

    let plain = {
        let mut taps_storage = make_taps(&ft2);
        let mut taps = TapList::new();
        for t in taps_storage.iter_mut() {
            taps.push(t.as_mut());
        }
        model.generate(&prompt, 12, &mut taps)
    };
    let recovered = {
        let mut taps_storage = make_taps(&ft2);
        let mut taps = TapList::new();
        for t in taps_storage.iter_mut() {
            taps.push(t.as_mut());
        }
        model.generate_with_recovery(&prompt, 12, &mut taps, RecoveryPolicy::retries(3))
    };

    assert_eq!(plain.tokens, recovered.tokens);
    assert_eq!(recovered.rollbacks, 0);
    assert_eq!(recovered.storms, 0);
    assert!(!recovered.recovery_failed);
}

fn make_taps(factory: &SchemeFactory) -> Vec<Box<dyn ft2_model::LayerTap>> {
    use ft2_fault::ProtectionFactory;
    factory.make()
}

/// Strict token-identity judge, independent of `ft2-tasks` so this test
/// only exercises the fault + core crates.
struct ExactTokens;

impl ft2_fault::OutcomeJudge for ExactTokens {
    fn classify(&self, reference: &[u32], faulty: &[u32]) -> Outcome {
        if reference == faulty {
            Outcome::MaskedIdentical
        } else {
            Outcome::Sdc
        }
    }
}
