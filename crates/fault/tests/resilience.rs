//! Crash-safety integration tests: panic isolation, watchdogs, and
//! checkpoint/resume, all through the public `ft2-fault` API.

use ft2_fault::{
    Campaign, CampaignCheckpoint, CampaignConfig, CheckpointPolicy, ExactJudge, FaultModel,
    Outcome, ProtectionFactory, Unprotected,
};
use ft2_model::{LayerTap, Model, ModelConfig, TapCtx};
use ft2_parallel::WorkStealingPool;
use ft2_tensor::Matrix;
use std::path::PathBuf;

fn inputs() -> Vec<Vec<u32>> {
    vec![
        vec![1, 22, 33, 44, 5],
        vec![80, 70, 60, 50],
        vec![9, 8, 7, 6, 5, 4],
    ]
}

fn cfg(fm: FaultModel) -> CampaignConfig {
    CampaignConfig {
        trials_per_input: 12,
        gen_tokens: 6,
        ..CampaignConfig::quick(fm)
    }
}

fn temp_checkpoint(name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("ft2-resilience-{name}.json"));
    std::fs::remove_file(&path).ok();
    path
}

/// A protection tap with a bug: it panics at step 1 on block 0 whenever the
/// activations there are still finite — the way a real protection-scheme
/// defect would take down a worker thread mid-generation.
struct FlakyTap;

impl LayerTap for FlakyTap {
    fn on_output(&mut self, ctx: &TapCtx, data: &mut Matrix) {
        if ctx.step == 1 && ctx.point.block == 0 && data.as_slice()[0].is_finite() {
            panic!("flaky protection bug at step {}", ctx.step);
        }
    }
}

struct Flaky;

impl ProtectionFactory for Flaky {
    fn make(&self) -> Vec<Box<dyn LayerTap>> {
        vec![Box::new(FlakyTap)]
    }

    fn scheme_name(&self) -> &str {
        "Flaky"
    }
}

#[test]
fn crashing_scheme_completes_campaign_and_pool_survives() {
    let model = Model::new(ModelConfig::tiny_opt());
    let pool = WorkStealingPool::new(4);
    let ins = inputs();
    let judge = ExactJudge;
    let campaign = Campaign::new(&model, &ins, &judge, cfg(FaultModel::SingleBit), &pool);

    let r = campaign.run(&Flaky, &pool);
    assert_eq!(r.counts.total(), 36, "every trial must be accounted for");
    assert!(r.counts.crash > 0, "the flaky tap must crash some trials");
    assert_eq!(r.counts.crash as usize, r.crashes.len());
    for failure in &r.crashes {
        assert!(failure.message.contains("flaky protection bug"));
        assert!(failure.input < ins.len());
        assert!(failure.trial < 12);
    }

    // Same pool, clean scheme: zero crashes, full accounting.
    let clean = campaign.run(&Unprotected, &pool);
    assert_eq!(clean.counts.total(), 36);
    assert_eq!(clean.counts.crash, 0);
}

#[test]
fn crash_outcomes_are_deterministic_across_thread_counts() {
    let model = Model::new(ModelConfig::tiny_opt());
    let ins = inputs();
    let judge = ExactJudge;

    let pool1 = WorkStealingPool::new(1);
    let c1 = Campaign::new(&model, &ins, &judge, cfg(FaultModel::ExponentBit), &pool1);
    let r1 = c1.run(&Flaky, &pool1);

    let pool4 = WorkStealingPool::new(4);
    let c4 = Campaign::new(&model, &ins, &judge, cfg(FaultModel::ExponentBit), &pool4);
    let r4 = c4.run(&Flaky, &pool4);

    assert_eq!(r1.counts, r4.counts);
    assert_eq!(r1.crashes, r4.crashes, "crash list is in task order");
}

#[test]
fn double_interruption_resumes_bit_identically() {
    let model = Model::new(ModelConfig::tiny_opt());
    let pool = WorkStealingPool::new(3);
    let ins = inputs();
    let judge = ExactJudge;
    let campaign = Campaign::new(&model, &ins, &judge, cfg(FaultModel::ExponentBit), &pool);
    let uninterrupted = campaign.run(&Unprotected, &pool);

    let path = temp_checkpoint("double-interrupt");
    // Kill after 5 tasks, then after 11 more, then run to completion: three
    // invocations, one logical campaign.
    for (abort, expect_done) in [(Some(5), 5), (Some(11), 16), (None, 36)] {
        let run = campaign
            .run_resumable(
                &Unprotected,
                &pool,
                &CheckpointPolicy {
                    path: path.clone(),
                    every: 3,
                    resume: true,
                    abort_after: abort,
                },
            )
            .unwrap();
        assert_eq!(run.completed_tasks, expect_done);
        assert_eq!(run.interrupted, abort.is_some());
        if run.interrupted {
            // The checkpoint on disk parses and matches the run's state.
            let cp = CampaignCheckpoint::load(&path).unwrap().unwrap();
            assert_eq!(cp.completed_tasks, expect_done);
            assert_eq!(cp.result, run.result);
        } else {
            assert_eq!(run.result, uninterrupted, "resumed != uninterrupted");
            assert!(!path.exists());
        }
    }
}

#[test]
fn crashing_campaign_resumes_bit_identically() {
    // The acceptance combination: crashes AND interruption AND resume.
    let model = Model::new(ModelConfig::tiny_opt());
    let pool = WorkStealingPool::new(4);
    let ins = inputs();
    let judge = ExactJudge;
    let campaign = Campaign::new(&model, &ins, &judge, cfg(FaultModel::SingleBit), &pool);
    let uninterrupted = campaign.run(&Flaky, &pool);
    assert!(uninterrupted.counts.crash > 0);

    let path = temp_checkpoint("crashing-resume");
    let first = campaign
        .run_resumable(
            &Flaky,
            &pool,
            &CheckpointPolicy {
                path: path.clone(),
                every: 4,
                resume: true,
                abort_after: Some(17),
            },
        )
        .unwrap();
    assert!(first.interrupted);

    let second = campaign
        .run_resumable(&Flaky, &pool, &CheckpointPolicy::resume_at(&path, 4))
        .unwrap();
    assert!(!second.interrupted);
    assert_eq!(second.result, uninterrupted);
    // Crash records (site strings and all) survive the JSON round-trip.
    assert_eq!(second.result.crashes, uninterrupted.crashes);
}

#[test]
fn token_budget_hangs_are_reproducible() {
    let model = Model::new(ModelConfig::tiny_opt());
    let ins = inputs();
    let judge = ExactJudge;
    let mut c = cfg(FaultModel::SingleBit);
    c.trial_token_budget = Some(2); // below gen_tokens: every trial hangs

    let pool1 = WorkStealingPool::new(1);
    let r1 = Campaign::new(&model, &ins, &judge, c.clone(), &pool1).run(&Unprotected, &pool1);
    let pool4 = WorkStealingPool::new(4);
    let r4 = Campaign::new(&model, &ins, &judge, c, &pool4).run(&Unprotected, &pool4);

    assert_eq!(r1.counts.hang, 36);
    assert_eq!(r1.counts, r4.counts);
    assert!(r1.crashes.is_empty(), "hangs must not be reported as crashes");
}

#[test]
fn hang_and_crash_are_distinct_outcomes() {
    let model = Model::new(ModelConfig::tiny_opt());
    let pool = WorkStealingPool::new(2);
    let ins = inputs();
    let judge = ExactJudge;
    let mut c = cfg(FaultModel::SingleBit);
    c.trial_token_budget = Some(1);
    let campaign = Campaign::new(&model, &ins, &judge, c, &pool);
    // Flaky panics at step 1; the watchdog aborts at step 1 too — but the
    // watchdog tap runs first, so every trial is a Hang, not a Crash.
    let r = campaign.run(&Flaky, &pool);
    assert_eq!(r.counts.hang, 36);
    assert_eq!(r.counts.crash, 0);
    let (rec, _) = campaign.trial_record_traced(&Flaky, 0, 0);
    assert_eq!(rec.outcome, Outcome::Hang);
}
