//! Live fault injection: the typed faults behind the web demo's
//! `POST /inject` control.
//!
//! The serving front end accepts a tiny form-encoded body ("flip a bit in
//! block 2 now" is `kind=flip&block=2`) and parses it into a [`LiveFault`]
//! here — the HTTP layer stays dumb and the harness maps the typed fault
//! onto the existing injectors (a `StormTap` on the next submitted request
//! for request-scoped faults, a [`crate::ReplicaFaultSpec`] for
//! replica-scoped ones). Parsing is strict: unknown kinds and malformed
//! numbers are errors, never silently defaulted faults.

/// A fault requested over the live injection endpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LiveFault {
    /// Flip one exponent bit of the VProj output of `block` on the next
    /// submitted request (transient; heals after one rollback).
    Flip {
        /// Decoder block to strike.
        block: usize,
    },
    /// Storm the VProj output of `block` on the next submitted request.
    Storm {
        /// Decoder block to strike.
        block: usize,
        /// Persistent storms never heal (the eviction drill); transient
        /// ones heal after one rollback.
        persistent: bool,
    },
    /// Crash replica `replica` at its next decode step.
    Crash {
        /// Target replica index.
        replica: usize,
    },
    /// Hang replica `replica` at its next decode step (watchdog drill).
    Hang {
        /// Target replica index.
        replica: usize,
    },
}

impl LiveFault {
    /// Parse a form-encoded injection body (`kind=flip&block=2`).
    ///
    /// Recognised keys: `kind` (required: `flip`, `storm`, `crash`,
    /// `hang`), `block` (default 0), `replica` (default 0), `persistent`
    /// (`1`/`true`, storms only). Unknown keys are ignored so the viewer
    /// form can grow fields without breaking old binaries.
    pub fn parse(body: &str) -> Result<LiveFault, String> {
        let mut kind = None;
        let mut block = 0usize;
        let mut replica = 0usize;
        let mut persistent = false;
        for pair in body.split('&').filter(|p| !p.is_empty()) {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            match k.trim() {
                "kind" => kind = Some(v.trim().to_ascii_lowercase()),
                "block" => {
                    block = v
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad block {v:?}"))?;
                }
                "replica" => {
                    replica = v
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad replica {v:?}"))?;
                }
                "persistent" => persistent = matches!(v.trim(), "1" | "true"),
                _ => {}
            }
        }
        match kind.as_deref() {
            Some("flip") => Ok(LiveFault::Flip { block }),
            Some("storm") => Ok(LiveFault::Storm { block, persistent }),
            Some("crash") => Ok(LiveFault::Crash { replica }),
            Some("hang") => Ok(LiveFault::Hang { replica }),
            Some(other) => Err(format!("unknown fault kind {other:?}")),
            None => Err("missing kind".to_string()),
        }
    }

    /// Short human-readable description, echoed in the `inject` event.
    pub fn describe(&self) -> String {
        match self {
            LiveFault::Flip { block } => format!("flip block {block}"),
            LiveFault::Storm { block, persistent } => {
                if *persistent {
                    format!("persistent storm block {block}")
                } else {
                    format!("storm block {block}")
                }
            }
            LiveFault::Crash { replica } => format!("crash replica {replica}"),
            LiveFault::Hang { replica } => format!("hang replica {replica}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_flip_a_bit_in_block_2_form() {
        assert_eq!(
            LiveFault::parse("kind=flip&block=2"),
            Ok(LiveFault::Flip { block: 2 })
        );
    }

    #[test]
    fn parses_defaults_and_flags() {
        assert_eq!(
            LiveFault::parse("kind=storm"),
            Ok(LiveFault::Storm { block: 0, persistent: false })
        );
        assert_eq!(
            LiveFault::parse("kind=storm&block=1&persistent=1"),
            Ok(LiveFault::Storm { block: 1, persistent: true })
        );
        assert_eq!(
            LiveFault::parse("kind=crash&replica=1"),
            Ok(LiveFault::Crash { replica: 1 })
        );
        assert_eq!(
            LiveFault::parse("kind=hang&replica=2&extra=ignored"),
            Ok(LiveFault::Hang { replica: 2 })
        );
    }

    #[test]
    fn rejects_garbage_instead_of_defaulting() {
        assert!(LiveFault::parse("").is_err());
        assert!(LiveFault::parse("block=2").is_err());
        assert!(LiveFault::parse("kind=meteor").is_err());
        assert!(LiveFault::parse("kind=flip&block=banana").is_err());
    }

    #[test]
    fn descriptions_name_the_target() {
        assert_eq!(LiveFault::Flip { block: 2 }.describe(), "flip block 2");
        assert_eq!(
            LiveFault::Storm { block: 0, persistent: true }.describe(),
            "persistent storm block 0"
        );
        assert_eq!(LiveFault::Crash { replica: 1 }.describe(), "crash replica 1");
    }
}
