//! Dual modular redundancy (DMR) — the "duplication in place" endpoint the
//! paper's limitations section concedes safety-critical deployments may
//! need (§1: "achieving 0% SDC may require additional techniques such as
//! duplications in place, where the corresponding significant overhead is
//! expected").
//!
//! Execute the inference twice; a transient fault perturbs at most one
//! execution, so any output mismatch detects it, and re-execution
//! recovers. The guaranteed ~2x cost (plus re-execution on detection) is
//! the overhead FT2's 3.42% undercuts by two orders of magnitude.

use crate::campaign::CampaignConfig;
use crate::inject::FaultInjector;
use crate::outcome::OutcomeJudge;
use crate::site::SiteSampler;
use ft2_model::{Model, TapList};
use ft2_numeric::Xoshiro256StarStar;
use ft2_parallel::WorkStealingPool;

/// Aggregate result of a DMR campaign.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DmrReport {
    /// Total fault-injection trials.
    pub trials: u64,
    /// Trials where the faulty execution differed from the duplicate
    /// (fault detected; re-execution engaged).
    pub detected: u64,
    /// Trials where the fault changed the output of the faulty execution
    /// relative to the fault-free reference (i.e. would have been Masked-
    /// semantic or SDC without DMR).
    pub output_corrupting: u64,
    /// SDCs remaining after detection + re-execution. Zero by construction
    /// under the single-transient-fault model.
    pub sdc_after_recovery: u64,
    /// Executions performed per protected inference (2 + detection rate).
    pub executions: u64,
}

impl DmrReport {
    /// Average executions per inference (the overhead factor).
    pub fn overhead_factor(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.executions as f64 / self.trials as f64
        }
    }

    /// Fraction of output-corrupting faults that were detected.
    pub fn detection_coverage(&self) -> f64 {
        if self.output_corrupting == 0 {
            1.0
        } else {
            // Every output-corrupting fault differs from the duplicate by
            // definition; this is a consistency check rather than an
            // estimate.
            // ft2: nan-ok (integer trial counters, no floats in the min)
            self.detected.min(self.output_corrupting) as f64 / self.output_corrupting as f64
        }
    }
}

/// Run a DMR campaign: per trial, one faulty execution plus one duplicate;
/// mismatch triggers a third (recovery) execution whose output is final.
pub fn run_dmr_campaign(
    model: &Model,
    inputs: &[Vec<u32>],
    judge: &dyn OutcomeJudge,
    config: &CampaignConfig,
    pool: &WorkStealingPool,
) -> DmrReport {
    let gen_tokens = config.gen_tokens;
    let references: Vec<Vec<u32>> = pool.map(inputs, 1, |_, prompt| {
        let mut taps = TapList::new();
        model.generate(prompt, gen_tokens, &mut taps).tokens
    });

    let total = inputs.len() * config.trials_per_input;
    let format = model.config().dtype.format();
    let per_trial: Vec<(bool, bool, u64, bool)> = pool.map(
        &(0..total).collect::<Vec<usize>>(),
        4,
        |_, &task| {
            let input_id = task / config.trials_per_input;
            let trial_id = task % config.trials_per_input;
            let prompt = &inputs[input_id];
            let mut rng = Xoshiro256StarStar::for_stream(
                config.seed ^ 0xD31,
                &[input_id as u64, trial_id as u64],
            );
            let sampler = SiteSampler::new(model.config(), prompt.len(), gen_tokens)
                .with_step_weighting(config.step_weighting);
            let site = sampler.sample(&mut rng, config.fault_model, format);

            // Execution 1: faulty.
            let mut injector = FaultInjector::new(site);
            let mut taps = TapList::new();
            taps.push(&mut injector);
            let faulty = model.generate(prompt, gen_tokens, &mut taps);
            drop(taps);
            // Execution 2: the duplicate (transient faults do not repeat).
            let duplicate = &references[input_id];

            let detected = &faulty.tokens != duplicate;
            let corrupting = !judge
                .classify(&references[input_id], &faulty.tokens)
                .is_masked()
                || detected;
            let mut executions = 2u64;
            let mut final_tokens = faulty.tokens;
            if detected {
                // Execution 3: recovery (clean by the single-fault model).
                executions += 1;
                final_tokens = references[input_id].clone();
            }
            let sdc = !judge
                .classify(&references[input_id], &final_tokens)
                .is_masked();
            (detected, corrupting, executions, sdc)
        },
    );

    let mut report = DmrReport {
        trials: total as u64,
        ..Default::default()
    };
    for (detected, corrupting, executions, sdc) in per_trial {
        report.detected += u64::from(detected);
        report.output_corrupting += u64::from(corrupting);
        report.executions += executions;
        report.sdc_after_recovery += u64::from(sdc);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FaultModel;
    use crate::outcome::ExactJudge;
    use ft2_model::ModelConfig;

    #[test]
    fn dmr_recovers_every_fault() {
        let model = Model::new(ModelConfig::tiny_opt());
        let inputs = vec![vec![3u32, 5, 8, 13], vec![2, 7, 1, 8, 2]];
        let pool = WorkStealingPool::new(2);
        let cfg = CampaignConfig {
            trials_per_input: 40,
            gen_tokens: 10,
            ..CampaignConfig::quick(FaultModel::ExponentBit)
        };
        let report = run_dmr_campaign(&model, &inputs, &ExactJudge, &cfg, &pool);
        assert_eq!(report.trials, 80);
        assert_eq!(report.sdc_after_recovery, 0, "DMR must recover everything");
        assert!(report.overhead_factor() >= 2.0);
        assert!(report.overhead_factor() <= 3.0);
        assert_eq!(report.detection_coverage(), 1.0);
    }

    #[test]
    fn overhead_scales_with_detection_rate() {
        let model = Model::new(ModelConfig::tiny_llama());
        let inputs = vec![vec![9u32, 4, 6, 2, 7]];
        let pool = WorkStealingPool::new(1);
        let cfg = CampaignConfig {
            trials_per_input: 30,
            gen_tokens: 8,
            ..CampaignConfig::quick(FaultModel::SingleBit)
        };
        let report = run_dmr_campaign(&model, &inputs, &ExactJudge, &cfg, &pool);
        let expected = 2.0 + report.detected as f64 / report.trials as f64;
        assert!((report.overhead_factor() - expected).abs() < 1e-9);
    }
}
