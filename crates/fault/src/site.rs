//! Fault-site sampling.
//!
//! §2.3: "For each fault injection trial, the location of the model to
//! inject a fault is identified by the layer ID, neuron ID, and bit
//! locations", restricted to the linear layers of the decoder blocks
//! (they account for the overwhelming majority of the computation). We
//! additionally sample the *generation step* the fault strikes at, weighted
//! by how many neuron computations each step performs — the prefill step
//! computes `prompt_len` positions per layer while decode steps compute one,
//! so a uniformly random computation is proportionally more likely to fall
//! in the prefill.

use crate::model::{FaultDuration, FaultModel, FaultTarget};
use ft2_model::{LayerKind, ModelConfig, TapPoint};
use ft2_numeric::Rng;

/// A fully resolved fault site: where and what to corrupt.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultSite {
    /// Generation step the fault strikes at (0 = prefill / first-token
    /// step). For durable faults this is the *first* corrupted step.
    pub step: usize,
    /// Block and layer to corrupt.
    pub point: TapPoint,
    /// Flattened element index into the targeted tensor. For
    /// [`FaultTarget::Activation`] this indexes that step's output matrix
    /// (`rows_at_step × out_features` elements); for [`FaultTarget::Weight`]
    /// the layer's weight matrix (`out × in` elements); for
    /// [`FaultTarget::KvCache`] the cached K or V matrix of the block
    /// (`cached_positions × width` elements, wrapped at injection time).
    pub element: usize,
    /// Bit positions to flip (1 for single/EXP, 2 for double).
    pub bits: Vec<u32>,
    /// How long the corruption endures.
    pub duration: FaultDuration,
    /// Which stored tensor class is struck.
    pub target: FaultTarget,
}

/// Restricts which generation steps a sampler may target.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepFilter {
    /// Any step of the generation (the default campaign behaviour).
    AllSteps,
    /// Only the prefill / first-token step (the Fig. 11 study).
    FirstTokenOnly,
    /// Only decode steps (protection-effectiveness isolation).
    FollowingTokensOnly,
}

/// How generation steps are weighted when sampling the step a fault
/// strikes at.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum StepWeighting {
    /// Soft errors are uniform in *time* (cosmic rays strike at a constant
    /// rate, §4.2.2): each step's weight is its execution-time share. On a
    /// GPU the prefill is compute-parallel, so the first-token step costs
    /// only a few decode-step equivalents — the paper measures 0.6–8.3% of
    /// total inference time (Fig. 10). `prefill_factor` is the prefill's
    /// cost in decode-step units (default 2.0, the middle of the paper's
    /// A100 measurements).
    ByTime {
        /// Prefill cost in decode-step equivalents.
        prefill_factor: f64,
    },
    /// Uniform over neuron *computations*: the prefill is weighted by the
    /// prompt length (what a per-FLOP fault model would do on a serial
    /// machine). Kept for ablations.
    ByComputation,
}

impl Default for StepWeighting {
    fn default() -> Self {
        // One decode-step equivalent: with the scaled-down generation
        // lengths used here (16-48 tokens vs the paper's 60-180) this puts
        // the first-token step at 2-6% of inference time, matching the
        // measured shares of Fig. 10.
        StepWeighting::ByTime { prefill_factor: 1.0 }
    }
}

/// Samples fault sites uniformly over neuron computations.
#[derive(Clone, Debug)]
pub struct SiteSampler {
    layers: Vec<(TapPoint, usize, usize)>, // (point, out_features, in_features)
    prompt_len: usize,
    gen_tokens: usize,
    filter: StepFilter,
    weighting: StepWeighting,
    /// Optional restriction of targetable layer kinds (e.g. inject only
    /// into critical layers for an ablation).
    layer_filter: Option<Vec<LayerKind>>,
    duration: FaultDuration,
    target: FaultTarget,
}

impl SiteSampler {
    /// Sampler over every linear layer of every block.
    pub fn new(config: &ModelConfig, prompt_len: usize, gen_tokens: usize) -> SiteSampler {
        let mut layers = Vec::new();
        for b in 0..config.blocks {
            for &k in config.block_layers() {
                layers.push((
                    TapPoint { block: b, layer: k },
                    config.out_features(k),
                    config.in_features(k),
                ));
            }
        }
        SiteSampler {
            layers,
            prompt_len,
            gen_tokens,
            filter: StepFilter::AllSteps,
            weighting: StepWeighting::default(),
            layer_filter: None,
            duration: FaultDuration::Transient,
            target: FaultTarget::Activation,
        }
    }

    /// Choose how long sampled faults endure (default transient).
    pub fn with_duration(mut self, duration: FaultDuration) -> Self {
        self.duration = duration;
        self
    }

    /// Choose which tensor class sampled faults strike (default
    /// activations, the paper's model).
    pub fn with_target(mut self, target: FaultTarget) -> Self {
        self.target = target;
        self
    }

    /// Choose how generation steps are weighted.
    pub fn with_step_weighting(mut self, weighting: StepWeighting) -> Self {
        self.weighting = weighting;
        self
    }

    /// Restrict the generation steps faults may strike.
    pub fn with_step_filter(mut self, filter: StepFilter) -> Self {
        self.filter = filter;
        self
    }

    /// Restrict the layer kinds faults may strike.
    pub fn with_layer_filter(mut self, kinds: Vec<LayerKind>) -> Self {
        self.layer_filter = Some(kinds);
        self
    }

    fn eligible_layers(&self) -> Vec<(TapPoint, usize, usize)> {
        let mut layers: Vec<(TapPoint, usize, usize)> = match &self.layer_filter {
            None => self.layers.clone(),
            Some(kinds) => self
                .layers
                .iter()
                .filter(|(p, _, _)| kinds.contains(&p.layer))
                .cloned()
                .collect(),
        };
        // KV-cache faults can only strike cached K/V rows, which only the
        // K/V projections produce.
        if self.target == FaultTarget::KvCache {
            layers.retain(|(p, _, _)| matches!(p.layer, LayerKind::KProj | LayerKind::VProj));
        }
        layers
    }

    /// Number of rows a layer output has at a given step.
    fn rows_at_step(&self, step: usize) -> usize {
        if step == 0 {
            self.prompt_len
        } else {
            1
        }
    }

    /// Sample a site. Uniform over `(step, layer, element)` computations
    /// within the allowed steps/layers.
    pub fn sample(&self, rng: &mut impl Rng, fault_model: FaultModel, format: ft2_numeric::FloatFormat) -> FaultSite {
        let layers = self.eligible_layers();
        assert!(!layers.is_empty(), "no eligible layers to sample");
        // Per-layer sampling weight: activation and KV faults land
        // proportionally to the layer's output width, weight faults
        // proportionally to the layer's parameter count.
        let layer_weight = |l: &(TapPoint, usize, usize)| -> u64 {
            match self.target {
                FaultTarget::Activation | FaultTarget::KvCache => l.1 as u64,
                FaultTarget::Weight => (l.1 * l.2) as u64,
            }
        };
        let per_layer_features: u64 = layers.iter().map(layer_weight).sum();

        // Total computations per step = rows(step) * sum(features).
        let mut steps: Vec<usize> = match self.filter {
            StepFilter::AllSteps => (0..self.gen_tokens).collect(),
            StepFilter::FirstTokenOnly => vec![0],
            StepFilter::FollowingTokensOnly => (1..self.gen_tokens).collect(),
        };
        // The KV cache is empty before the prefill completes, so cache
        // faults can only strike decode steps.
        if self.target == FaultTarget::KvCache {
            steps.retain(|&s| s >= 1);
            assert!(!steps.is_empty(), "KV-cache faults need a decode step");
        }
        // Weight steps by execution-time share (default) or computation
        // count; scale to integers for exact sampling.
        let weights: Vec<u64> = steps
            .iter()
            .map(|&s| {
                let step_units = match self.weighting {
                    StepWeighting::ByComputation => self.rows_at_step(s) as f64,
                    StepWeighting::ByTime { prefill_factor } => {
                        if s == 0 {
                            prefill_factor
                        } else {
                            1.0
                        }
                    }
                };
                (step_units * 1024.0).round() as u64 * per_layer_features
            })
            .collect();
        let total: u64 = weights.iter().sum();
        let mut pick = rng.below(total);
        let mut step = steps[0];
        for (s, w) in steps.iter().zip(&weights) {
            if pick < *w {
                step = *s;
                break;
            }
            pick -= w;
        }

        // Within the step, pick a layer weighted by its sampling weight,
        // then an element uniformly within the targeted tensor.
        let rows = self.rows_at_step(step);
        let mut fpick = rng.below(per_layer_features);
        let mut chosen = layers[0];
        for l in &layers {
            let w = layer_weight(l);
            if fpick < w {
                chosen = *l;
                break;
            }
            fpick -= w;
        }
        let elements = match self.target {
            FaultTarget::Activation => rows * chosen.1,
            FaultTarget::Weight => chosen.1 * chosen.2,
            // Cached positions before the forward pass of `step` runs:
            // prompt plus the step-1 decode appends (step >= 1 here).
            FaultTarget::KvCache => (self.prompt_len + step - 1) * chosen.1,
        };
        let element = rng.index(elements);
        let bits = fault_model.sample_bits(rng, format);

        FaultSite {
            step,
            point: chosen.0,
            element,
            bits,
            duration: self.duration,
            target: self.target,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft2_numeric::{FloatFormat, Xoshiro256StarStar};

    fn sampler() -> SiteSampler {
        let config = ft2_model::ModelConfig::tiny_opt();
        SiteSampler::new(&config, 8, 10)
    }

    #[test]
    fn samples_are_in_bounds() {
        let config = ft2_model::ModelConfig::tiny_opt();
        let s = sampler();
        let mut rng = Xoshiro256StarStar::new(7);
        for _ in 0..5000 {
            let site = s.sample(&mut rng, FaultModel::SingleBit, FloatFormat::F16);
            assert!(site.step < 10);
            assert!(site.point.block < config.blocks);
            assert!(config.block_layers().contains(&site.point.layer));
            let rows = if site.step == 0 { 8 } else { 1 };
            assert!(site.element < rows * config.out_features(site.point.layer));
            assert_eq!(site.bits.len(), 1);
        }
    }

    #[test]
    fn time_weighting_gives_prefill_a_small_share() {
        // Default ByTime with prefill_factor 1: step 0 has 1 of 10 units.
        let s = sampler();
        let mut rng = Xoshiro256StarStar::new(8);
        let n = 20_000;
        let step0 = (0..n)
            .filter(|_| {
                s.sample(&mut rng, FaultModel::SingleBit, FloatFormat::F16).step == 0
            })
            .count();
        let frac = step0 as f64 / n as f64;
        let expect = 1.0 / 10.0;
        assert!((frac - expect).abs() < 0.02, "frac {frac} expect {expect}");
    }

    #[test]
    fn computation_weighting_weights_prefill_by_prompt_len() {
        // prompt_len 8, 10 steps: step 0 has 8 of 17 row-units.
        let s = sampler().with_step_weighting(StepWeighting::ByComputation);
        let mut rng = Xoshiro256StarStar::new(8);
        let n = 20_000;
        let step0 = (0..n)
            .filter(|_| {
                s.sample(&mut rng, FaultModel::SingleBit, FloatFormat::F16).step == 0
            })
            .count();
        let frac = step0 as f64 / n as f64;
        let expect = 8.0 / 17.0;
        assert!((frac - expect).abs() < 0.02, "frac {frac} expect {expect}");
    }

    #[test]
    fn layer_weighting_follows_feature_count() {
        // FC1 has ffn=128 features vs 32 for K: FC1 must be sampled ~4x more.
        let s = sampler();
        let mut rng = Xoshiro256StarStar::new(9);
        let n = 30_000;
        let mut fc1 = 0;
        let mut k = 0;
        for _ in 0..n {
            let site = s.sample(&mut rng, FaultModel::SingleBit, FloatFormat::F16);
            match site.point.layer {
                LayerKind::Fc1 => fc1 += 1,
                LayerKind::KProj => k += 1,
                _ => {}
            }
        }
        let ratio = fc1 as f64 / k as f64;
        assert!((ratio - 4.0).abs() < 0.5, "ratio {ratio}");
    }

    #[test]
    fn step_filters() {
        let mut rng = Xoshiro256StarStar::new(10);
        let first = sampler().with_step_filter(StepFilter::FirstTokenOnly);
        for _ in 0..100 {
            assert_eq!(first.sample(&mut rng, FaultModel::SingleBit, FloatFormat::F16).step, 0);
        }
        let rest = sampler().with_step_filter(StepFilter::FollowingTokensOnly);
        for _ in 0..100 {
            assert!(rest.sample(&mut rng, FaultModel::SingleBit, FloatFormat::F16).step >= 1);
        }
    }

    #[test]
    fn layer_filter_restricts_targets() {
        let mut rng = Xoshiro256StarStar::new(11);
        let s = sampler().with_layer_filter(vec![LayerKind::VProj, LayerKind::Fc2]);
        for _ in 0..500 {
            let site = s.sample(&mut rng, FaultModel::ExponentBit, FloatFormat::F16);
            assert!(matches!(site.point.layer, LayerKind::VProj | LayerKind::Fc2));
            assert!((10..=14).contains(&site.bits[0]));
        }
    }

    #[test]
    fn sampling_is_deterministic_per_stream() {
        let s = sampler();
        let mut a = Xoshiro256StarStar::for_stream(42, &[3, 17]);
        let mut b = Xoshiro256StarStar::for_stream(42, &[3, 17]);
        let sa = s.sample(&mut a, FaultModel::DoubleBit, FloatFormat::F16);
        let sb = s.sample(&mut b, FaultModel::DoubleBit, FloatFormat::F16);
        assert_eq!(sa, sb);
    }

    #[test]
    fn weight_sites_index_the_parameter_matrix() {
        use crate::model::{FaultDuration, FaultTarget};
        let config = ft2_model::ModelConfig::tiny_opt();
        let s = sampler()
            .with_target(FaultTarget::Weight)
            .with_duration(FaultDuration::Persistent);
        let mut rng = Xoshiro256StarStar::new(21);
        for _ in 0..2000 {
            let site = s.sample(&mut rng, FaultModel::SingleBit, FloatFormat::F16);
            assert_eq!(site.target, FaultTarget::Weight);
            assert_eq!(site.duration, FaultDuration::Persistent);
            let out = config.out_features(site.point.layer);
            let inf = config.in_features(site.point.layer);
            assert!(site.element < out * inf, "element {} out of bounds", site.element);
        }
    }

    #[test]
    fn kv_sites_strike_decode_steps_on_kv_projections() {
        use crate::model::FaultTarget;
        let config = ft2_model::ModelConfig::tiny_opt();
        let s = sampler().with_target(FaultTarget::KvCache);
        let mut rng = Xoshiro256StarStar::new(22);
        for _ in 0..2000 {
            let site = s.sample(&mut rng, FaultModel::SingleBit, FloatFormat::F16);
            assert!(site.step >= 1, "cache is empty before the prefill");
            assert!(matches!(site.point.layer, LayerKind::KProj | LayerKind::VProj));
            // prompt_len 8, so at step s the cache holds 8 + s - 1 rows.
            let cached = 8 + site.step - 1;
            assert!(site.element < cached * config.out_features(site.point.layer));
        }
    }

    #[test]
    fn kv_target_respects_layer_filter_intersection() {
        use crate::model::FaultTarget;
        let s = sampler()
            .with_target(FaultTarget::KvCache)
            .with_layer_filter(vec![LayerKind::KProj, LayerKind::Fc1]);
        let mut rng = Xoshiro256StarStar::new(23);
        for _ in 0..200 {
            let site = s.sample(&mut rng, FaultModel::SingleBit, FloatFormat::F16);
            assert_eq!(site.point.layer, LayerKind::KProj);
        }
    }
}
