//! Per-trial watchdog: abort runaway generations.
//!
//! An injected fault can knock a generation into pathological territory —
//! degenerate token loops that never emit EOS, or numerically poisoned
//! states where every layer is saturated and each decode step crawls. At
//! campaign scale one such trial can stall a worker for the length of the
//! whole run. The fix is cooperative cancellation: [`WatchdogTap`] rides
//! the same layer-output hook as the fault injector, checks its budgets on
//! every firing (thousands of checkpoints per generated token), and aborts
//! the trial by panicking with a typed [`TrialAbort`] payload. The campaign
//! engine catches the unwind, downcasts the payload, and classifies the
//! trial as [`crate::Outcome::Hang`] — a detected unrecoverable error —
//! rather than crediting it as masked or crashing the campaign.
//!
//! The token budget is deterministic (it counts generation steps). The
//! wall-clock deadline is inherently *not* bit-reproducible across machines
//! or load conditions; campaigns that must be exactly reproducible should
//! set only `trial_token_budget`.

use ft2_model::{LayerTap, TapCtx};
use ft2_tensor::Matrix;
use std::time::{Duration, Instant};

/// Typed panic payload used for cooperative trial cancellation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TrialAbort {
    /// The trial exceeded its wall-clock deadline.
    Deadline {
        /// Budget that was exceeded, in milliseconds.
        budget_ms: u64,
    },
    /// The trial exceeded its generation-step budget.
    TokenBudget {
        /// The step at which the budget tripped.
        step: usize,
        /// The configured maximum number of steps.
        budget: usize,
    },
}

impl std::fmt::Display for TrialAbort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrialAbort::Deadline { budget_ms } => {
                write!(f, "trial exceeded {budget_ms} ms wall-clock deadline")
            }
            TrialAbort::TokenBudget { step, budget } => {
                write!(f, "trial reached step {step} past its {budget}-step budget")
            }
        }
    }
}

/// A [`LayerTap`] that aborts the surrounding trial when it exceeds a
/// wall-clock deadline and/or a generation-step budget.
///
/// Register it *first* in the tap list so the check runs even when a later
/// tap (injector, protector) is what loops or stalls.
pub struct WatchdogTap {
    deadline: Option<(Instant, Duration)>,
    token_budget: Option<usize>,
}

impl WatchdogTap {
    /// A watchdog with the given budgets; `None` disables that check. The
    /// wall clock starts now.
    pub fn new(deadline: Option<Duration>, token_budget: Option<usize>) -> WatchdogTap {
        WatchdogTap {
            deadline: deadline.map(|d| (Instant::now(), d)),
            token_budget,
        }
    }

    /// True when at least one budget is configured.
    pub fn is_armed(&self) -> bool {
        self.deadline.is_some() || self.token_budget.is_some()
    }
}

impl LayerTap for WatchdogTap {
    fn on_output(&mut self, ctx: &TapCtx, _data: &mut Matrix) {
        if let Some(budget) = self.token_budget {
            if ctx.step >= budget {
                std::panic::panic_any(TrialAbort::TokenBudget {
                    step: ctx.step,
                    budget,
                });
            }
        }
        if let Some((start, limit)) = self.deadline {
            if start.elapsed() > limit {
                std::panic::panic_any(TrialAbort::Deadline {
                    budget_ms: limit.as_millis() as u64,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft2_model::{HookKind, TapPoint};
    use ft2_parallel::catch_quiet;
    use ft2_tensor::DType;

    fn ctx_at_step(step: usize) -> TapCtx {
        TapCtx {
            point: TapPoint {
                block: 0,
                layer: ft2_model::LayerKind::ALL[0],
            },
            hook: HookKind::LinearOutput,
            step,
            first_pos: 0,
            dtype: DType::F32,
        }
    }

    #[test]
    fn token_budget_aborts_with_typed_payload() {
        let mut wd = WatchdogTap::new(None, Some(4));
        let mut m = Matrix::from_vec(1, 1, vec![0.0]);
        // Below budget: no abort.
        wd.on_output(&ctx_at_step(3), &mut m);

        let mut wd = WatchdogTap::new(None, Some(4));
        let err = catch_quiet(move || {
            let mut m = Matrix::from_vec(1, 1, vec![0.0]);
            wd.on_output(&ctx_at_step(4), &mut m);
        })
        .unwrap_err();
        let abort = err
            .payload
            .downcast_ref::<TrialAbort>()
            .expect("payload must be TrialAbort");
        assert_eq!(*abort, TrialAbort::TokenBudget { step: 4, budget: 4 });
    }

    #[test]
    fn expired_deadline_aborts() {
        let mut wd = WatchdogTap::new(Some(Duration::ZERO), None);
        std::thread::sleep(Duration::from_millis(1));
        let err = catch_quiet(move || {
            let mut m = Matrix::from_vec(1, 1, vec![0.0]);
            wd.on_output(&ctx_at_step(0), &mut m);
        })
        .unwrap_err();
        assert!(matches!(
            err.payload.downcast_ref::<TrialAbort>(),
            Some(TrialAbort::Deadline { .. })
        ));
    }

    #[test]
    fn unarmed_watchdog_is_inert() {
        let mut wd = WatchdogTap::new(None, None);
        assert!(!wd.is_armed());
        let mut m = Matrix::from_vec(1, 1, vec![0.0]);
        for step in 0..100 {
            wd.on_output(&ctx_at_step(step), &mut m);
        }
    }
}
