//! The three fault models of §2.2, plus the fault-duration and fault-target
//! dimensions that extend the paper's transient activation faults to
//! persistent stored-state corruption (weights, KV-cache).

use ft2_numeric::bits::FloatFormat;
use ft2_numeric::Rng;

/// Which bits of a stored value a fault corrupts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultModel {
    /// *1-bit*: one uniformly random bit of the representation flips.
    SingleBit,
    /// *2-bit*: two distinct uniformly random bits flip.
    DoubleBit,
    /// *EXP*: one uniformly random **exponent** bit flips — the paper's most
    /// aggressive model, since exponent corruption changes magnitude
    /// multiplicatively.
    ExponentBit,
}

impl FaultModel {
    /// All three fault models, in the paper's reporting order.
    pub const ALL: [FaultModel; 3] = [
        FaultModel::SingleBit,
        FaultModel::DoubleBit,
        FaultModel::ExponentBit,
    ];

    /// Display name used in figures ("1-bit", "2-bit", "EXP").
    pub const fn name(self) -> &'static str {
        match self {
            FaultModel::SingleBit => "1-bit",
            FaultModel::DoubleBit => "2-bit",
            FaultModel::ExponentBit => "EXP",
        }
    }

    /// Parse a CLI name.
    pub fn parse(s: &str) -> Option<FaultModel> {
        match s.to_ascii_lowercase().as_str() {
            "1-bit" | "1bit" | "single" | "single-bit" => Some(FaultModel::SingleBit),
            "2-bit" | "2bit" | "double" | "double-bit" => Some(FaultModel::DoubleBit),
            "exp" | "exponent" => Some(FaultModel::ExponentBit),
            _ => None,
        }
    }

    /// Sample the bit positions to flip for a value stored in `format`.
    pub fn sample_bits(self, rng: &mut impl Rng, format: FloatFormat) -> Vec<u32> {
        let total = format.total_bits() as u64;
        match self {
            FaultModel::SingleBit => vec![rng.below(total) as u32],
            FaultModel::DoubleBit => {
                let a = rng.below(total) as u32;
                let mut b = rng.below(total - 1) as u32;
                if b >= a {
                    b += 1; // distinct without rejection
                }
                vec![a, b]
            }
            FaultModel::ExponentBit => {
                let (lo, hi) = format.exponent_bits();
                vec![lo + rng.below((hi - lo + 1) as u64) as u32]
            }
        }
    }
}

/// How long an injected fault endures.
///
/// The paper (and PR 2's rollback) assume [`FaultDuration::Transient`]: the
/// corruption exists for exactly one step, so re-decoding the token after a
/// KV-snapshot rollback re-computes clean state. Stored-state corruption
/// (DRAM/SRAM stuck bits, uncorrected ECC escapes) instead *persists* across
/// steps — re-decoding re-reads the same flipped bits, which is the regime
/// the integrity scrubber and repair path exist for.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultDuration {
    /// The corruption exists for one step only (the paper's model).
    Transient,
    /// The corruption re-appears every `period` steps (e.g. a marginal cell
    /// that flips under a recurring access pattern). `period == 1` corrupts
    /// every step.
    Intermittent {
        /// Steps between recurrences of the corruption (>= 1).
        period: usize,
    },
    /// The corruption endures from the strike step until explicitly
    /// repaired — rollback alone cannot mask it.
    Persistent,
}

impl FaultDuration {
    /// The durations in reporting order (intermittent shown at period 4).
    pub const ALL: [FaultDuration; 3] = [
        FaultDuration::Transient,
        FaultDuration::Intermittent { period: 4 },
        FaultDuration::Persistent,
    ];

    /// Display name used in reports.
    pub const fn name(self) -> &'static str {
        match self {
            FaultDuration::Transient => "transient",
            FaultDuration::Intermittent { .. } => "intermittent",
            FaultDuration::Persistent => "persistent",
        }
    }

    /// Parse a CLI name: `transient`, `persistent`, `intermittent`
    /// (period 4) or `intermittent:N`.
    pub fn parse(s: &str) -> Option<FaultDuration> {
        let lower = s.to_ascii_lowercase();
        match lower.as_str() {
            "transient" => return Some(FaultDuration::Transient),
            "persistent" => return Some(FaultDuration::Persistent),
            "intermittent" => return Some(FaultDuration::Intermittent { period: 4 }),
            _ => {}
        }
        if let Some(p) = lower.strip_prefix("intermittent:") {
            let period: usize = p.parse().ok()?;
            if period >= 1 {
                return Some(FaultDuration::Intermittent { period });
            }
        }
        None
    }

    /// Does a fault struck at `strike` corrupt state during `step`?
    /// (`Transient` corrupts only the strike step; `Persistent` every step
    /// from the strike on; `Intermittent` every `period`-th step from the
    /// strike.)
    pub fn active_at(self, strike: usize, step: usize) -> bool {
        if step < strike {
            return false;
        }
        match self {
            FaultDuration::Transient => step == strike,
            // ft2: nan-ok (usize period floor, no floats)
            FaultDuration::Intermittent { period } => (step - strike).is_multiple_of(period.max(1)),
            FaultDuration::Persistent => true,
        }
    }
}

/// Which stored tensor class a fault strikes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultTarget {
    /// A linear-layer output (the paper's model): computation-path state
    /// that is rebuilt every forward pass.
    Activation,
    /// A weight-matrix element: read by every subsequent forward pass until
    /// repaired from the golden copy.
    Weight,
    /// A cached K/V row element: re-read by attention at every subsequent
    /// step until the poisoned page is invalidated and re-decoded.
    KvCache,
}

impl FaultTarget {
    /// The targets in reporting order.
    pub const ALL: [FaultTarget; 3] = [
        FaultTarget::Activation,
        FaultTarget::Weight,
        FaultTarget::KvCache,
    ];

    /// Display name used in reports.
    pub const fn name(self) -> &'static str {
        match self {
            FaultTarget::Activation => "activation",
            FaultTarget::Weight => "weight",
            FaultTarget::KvCache => "kv-cache",
        }
    }

    /// Parse a CLI name.
    pub fn parse(s: &str) -> Option<FaultTarget> {
        match s.to_ascii_lowercase().as_str() {
            "activation" | "act" => Some(FaultTarget::Activation),
            "weight" | "weights" => Some(FaultTarget::Weight),
            "kv-cache" | "kvcache" | "kv" => Some(FaultTarget::KvCache),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft2_numeric::Xoshiro256StarStar;

    #[test]
    fn names_and_parse_roundtrip() {
        for m in FaultModel::ALL {
            assert_eq!(FaultModel::parse(m.name()), Some(m));
        }
        assert_eq!(FaultModel::parse("EXP"), Some(FaultModel::ExponentBit));
        assert_eq!(FaultModel::parse("3-bit"), None);
    }

    #[test]
    fn duration_parse_and_names() {
        assert_eq!(
            FaultDuration::parse("transient"),
            Some(FaultDuration::Transient)
        );
        assert_eq!(
            FaultDuration::parse("Persistent"),
            Some(FaultDuration::Persistent)
        );
        assert_eq!(
            FaultDuration::parse("intermittent"),
            Some(FaultDuration::Intermittent { period: 4 })
        );
        assert_eq!(
            FaultDuration::parse("intermittent:7"),
            Some(FaultDuration::Intermittent { period: 7 })
        );
        assert_eq!(FaultDuration::parse("intermittent:0"), None);
        assert_eq!(FaultDuration::parse("forever"), None);
        for d in FaultDuration::ALL {
            assert!(FaultDuration::parse(d.name()).is_some());
        }
    }

    #[test]
    fn duration_activity_schedule() {
        let t = FaultDuration::Transient;
        assert!(t.active_at(3, 3));
        assert!(!t.active_at(3, 4));
        assert!(!t.active_at(3, 2));

        let p = FaultDuration::Persistent;
        assert!(!p.active_at(3, 2));
        assert!(p.active_at(3, 3));
        assert!(p.active_at(3, 100));

        let i = FaultDuration::Intermittent { period: 3 };
        assert!(i.active_at(2, 2));
        assert!(!i.active_at(2, 3));
        assert!(!i.active_at(2, 4));
        assert!(i.active_at(2, 5));
        assert!(i.active_at(2, 8));
    }

    #[test]
    fn target_parse_roundtrip() {
        for t in FaultTarget::ALL {
            assert_eq!(FaultTarget::parse(t.name()), Some(t));
        }
        assert_eq!(FaultTarget::parse("kv"), Some(FaultTarget::KvCache));
        assert_eq!(FaultTarget::parse("dram"), None);
    }

    #[test]
    fn single_bit_covers_all_positions() {
        let mut rng = Xoshiro256StarStar::new(1);
        let mut seen = [false; 16];
        for _ in 0..2000 {
            let bits = FaultModel::SingleBit.sample_bits(&mut rng, FloatFormat::F16);
            assert_eq!(bits.len(), 1);
            assert!(bits[0] < 16);
            seen[bits[0] as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn double_bit_gives_distinct_bits() {
        let mut rng = Xoshiro256StarStar::new(2);
        for _ in 0..2000 {
            let bits = FaultModel::DoubleBit.sample_bits(&mut rng, FloatFormat::F16);
            assert_eq!(bits.len(), 2);
            assert_ne!(bits[0], bits[1]);
            assert!(bits.iter().all(|&b| b < 16));
        }
    }

    #[test]
    fn exp_bits_stay_in_exponent_range() {
        let mut rng = Xoshiro256StarStar::new(3);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..2000 {
            let bits = FaultModel::ExponentBit.sample_bits(&mut rng, FloatFormat::F16);
            assert_eq!(bits.len(), 1);
            assert!((10..=14).contains(&bits[0]), "bit {}", bits[0]);
            seen.insert(bits[0]);
        }
        assert_eq!(seen.len(), 5);
        // f32 exponent range.
        for _ in 0..200 {
            let bits = FaultModel::ExponentBit.sample_bits(&mut rng, FloatFormat::F32);
            assert!((23..=30).contains(&bits[0]));
        }
    }
}
