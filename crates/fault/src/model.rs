//! The three fault models of §2.2.

use ft2_numeric::bits::FloatFormat;
use ft2_numeric::Rng;

/// Which bits of a stored value a fault corrupts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultModel {
    /// *1-bit*: one uniformly random bit of the representation flips.
    SingleBit,
    /// *2-bit*: two distinct uniformly random bits flip.
    DoubleBit,
    /// *EXP*: one uniformly random **exponent** bit flips — the paper's most
    /// aggressive model, since exponent corruption changes magnitude
    /// multiplicatively.
    ExponentBit,
}

impl FaultModel {
    /// All three fault models, in the paper's reporting order.
    pub const ALL: [FaultModel; 3] = [
        FaultModel::SingleBit,
        FaultModel::DoubleBit,
        FaultModel::ExponentBit,
    ];

    /// Display name used in figures ("1-bit", "2-bit", "EXP").
    pub const fn name(self) -> &'static str {
        match self {
            FaultModel::SingleBit => "1-bit",
            FaultModel::DoubleBit => "2-bit",
            FaultModel::ExponentBit => "EXP",
        }
    }

    /// Parse a CLI name.
    pub fn parse(s: &str) -> Option<FaultModel> {
        match s.to_ascii_lowercase().as_str() {
            "1-bit" | "1bit" | "single" | "single-bit" => Some(FaultModel::SingleBit),
            "2-bit" | "2bit" | "double" | "double-bit" => Some(FaultModel::DoubleBit),
            "exp" | "exponent" => Some(FaultModel::ExponentBit),
            _ => None,
        }
    }

    /// Sample the bit positions to flip for a value stored in `format`.
    pub fn sample_bits(self, rng: &mut impl Rng, format: FloatFormat) -> Vec<u32> {
        let total = format.total_bits() as u64;
        match self {
            FaultModel::SingleBit => vec![rng.below(total) as u32],
            FaultModel::DoubleBit => {
                let a = rng.below(total) as u32;
                let mut b = rng.below(total - 1) as u32;
                if b >= a {
                    b += 1; // distinct without rejection
                }
                vec![a, b]
            }
            FaultModel::ExponentBit => {
                let (lo, hi) = format.exponent_bits();
                vec![lo + rng.below((hi - lo + 1) as u64) as u32]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft2_numeric::Xoshiro256StarStar;

    #[test]
    fn names_and_parse_roundtrip() {
        for m in FaultModel::ALL {
            assert_eq!(FaultModel::parse(m.name()), Some(m));
        }
        assert_eq!(FaultModel::parse("EXP"), Some(FaultModel::ExponentBit));
        assert_eq!(FaultModel::parse("3-bit"), None);
    }

    #[test]
    fn single_bit_covers_all_positions() {
        let mut rng = Xoshiro256StarStar::new(1);
        let mut seen = [false; 16];
        for _ in 0..2000 {
            let bits = FaultModel::SingleBit.sample_bits(&mut rng, FloatFormat::F16);
            assert_eq!(bits.len(), 1);
            assert!(bits[0] < 16);
            seen[bits[0] as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn double_bit_gives_distinct_bits() {
        let mut rng = Xoshiro256StarStar::new(2);
        for _ in 0..2000 {
            let bits = FaultModel::DoubleBit.sample_bits(&mut rng, FloatFormat::F16);
            assert_eq!(bits.len(), 2);
            assert_ne!(bits[0], bits[1]);
            assert!(bits.iter().all(|&b| b < 16));
        }
    }

    #[test]
    fn exp_bits_stay_in_exponent_range() {
        let mut rng = Xoshiro256StarStar::new(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2000 {
            let bits = FaultModel::ExponentBit.sample_bits(&mut rng, FloatFormat::F16);
            assert_eq!(bits.len(), 1);
            assert!((10..=14).contains(&bits[0]), "bit {}", bits[0]);
            seen.insert(bits[0]);
        }
        assert_eq!(seen.len(), 5);
        // f32 exponent range.
        for _ in 0..200 {
            let bits = FaultModel::ExponentBit.sample_bits(&mut rng, FloatFormat::F32);
            assert!((23..=30).contains(&bits[0]));
        }
    }
}
