//! Verbose trial tracing for deterministic replay.
//!
//! When a campaign reports a crash or a surprising SDC, the per-trial RNG
//! derivation (`seed, input, trial`) makes the trial exactly reproducible in
//! isolation. [`TraceTap`] rides the layer-output hook *after* the injector
//! and the protection taps and records numeric anomalies — NaN/Inf counts
//! and the running max-magnitude — per `(step, layer)` firing, so a replay
//! shows where a corrupted value entered and how far it propagated before
//! the outcome was decided.

use ft2_model::{HookKind, LayerTap, TapCtx, TapPoint};
use ft2_tensor::Matrix;

/// One anomalous hook firing observed during a traced trial.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Generation step (0 = prefill).
    pub step: usize,
    /// Layer that produced the anomalous output.
    pub point: TapPoint,
    /// Linear output or following activation.
    pub hook: HookKind,
    /// NaN elements in the output.
    pub nan: usize,
    /// Infinite elements in the output.
    pub inf: usize,
    /// Largest finite magnitude in the output.
    pub max_abs: f32,
}

/// A [`LayerTap`] that records anomalous layer outputs (any NaN/Inf, or a
/// new global max magnitude). Event count is capped so a fully poisoned
/// generation cannot accumulate unbounded state.
pub struct TraceTap {
    /// Recorded anomalies, in firing order.
    pub events: Vec<TraceEvent>,
    /// Largest finite magnitude seen anywhere in the trial.
    pub peak_abs: f32,
    /// Hook firings observed (including unremarkable ones).
    pub firings: usize,
    /// Token rollbacks the engine performed during the trial.
    pub rollbacks: usize,
    cap: usize,
}

impl Default for TraceTap {
    fn default() -> Self {
        TraceTap::new()
    }
}

impl TraceTap {
    /// A trace with the default event cap (256).
    pub fn new() -> TraceTap {
        TraceTap {
            events: Vec::new(),
            peak_abs: 0.0,
            firings: 0,
            rollbacks: 0,
            cap: 256,
        }
    }
}

impl LayerTap for TraceTap {
    fn on_output(&mut self, ctx: &TapCtx, data: &mut Matrix) {
        self.firings += 1;
        let mut nan = 0usize;
        let mut inf = 0usize;
        let mut max_abs = 0.0f32;
        for &v in data.as_slice() {
            if v.is_nan() {
                nan += 1;
            } else if v.is_infinite() {
                inf += 1;
            } else if v.abs() > max_abs {
                max_abs = v.abs();
            }
        }
        let new_peak = max_abs > self.peak_abs;
        if max_abs > self.peak_abs {
            self.peak_abs = max_abs;
        }
        if (nan > 0 || inf > 0 || new_peak) && self.events.len() < self.cap {
            self.events.push(TraceEvent {
                step: ctx.step,
                point: ctx.point,
                hook: ctx.hook,
                nan,
                inf,
                max_abs,
            });
        }
    }

    fn on_rollback(&mut self, _step: usize, _attempt: u32) {
        self.rollbacks += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft2_model::LayerKind;
    use ft2_tensor::DType;

    fn ctx(step: usize) -> TapCtx {
        TapCtx {
            point: TapPoint {
                block: 0,
                layer: LayerKind::Fc1,
            },
            hook: HookKind::LinearOutput,
            step,
            first_pos: 0,
            dtype: DType::F32,
        }
    }

    #[test]
    fn records_nan_inf_and_peaks() {
        let mut tap = TraceTap::new();
        let mut clean = Matrix::from_vec(1, 3, vec![0.5, -1.0, 0.25]);
        tap.on_output(&ctx(0), &mut clean);
        // First firing sets the peak, so it is recorded.
        assert_eq!(tap.events.len(), 1);

        // Same values again: no new peak, no anomaly, no event.
        tap.on_output(&ctx(1), &mut clean);
        assert_eq!(tap.events.len(), 1);

        let mut poisoned = Matrix::from_vec(1, 3, vec![f32::NAN, f32::INFINITY, 1e30]);
        tap.on_output(&ctx(2), &mut poisoned);
        assert_eq!(tap.events.len(), 2);
        let e = &tap.events[1];
        assert_eq!((e.nan, e.inf), (1, 1));
        assert_eq!(e.max_abs, 1e30);
        assert_eq!(tap.peak_abs, 1e30);
        assert_eq!(tap.firings, 3);
    }

    #[test]
    fn event_cap_bounds_memory() {
        let mut tap = TraceTap::new();
        tap.cap = 4;
        for step in 0..100 {
            // Ever-growing peak would otherwise record every firing.
            let mut m = Matrix::from_vec(1, 1, vec![step as f32 + 1.0]);
            tap.on_output(&ctx(step), &mut m);
        }
        assert_eq!(tap.events.len(), 4);
        assert_eq!(tap.firings, 100);
        assert_eq!(tap.peak_abs, 100.0);
    }
}
