//! The fault-injection tap.
//!
//! Registered as the *first* tap on the model so that a protection tap
//! registered after it sees the corrupted output — the same ordering as a
//! PyTorch forward hook that perturbs the output before Ranger-style hooks
//! run.

use crate::site::FaultSite;
use ft2_model::{HookKind, LayerTap, TapCtx};
use ft2_numeric::bits::flip_bit_in_format;
use ft2_tensor::Matrix;

/// Corrupts exactly one element of one layer output at one generation step.
pub struct FaultInjector {
    site: FaultSite,
    fired: bool,
    /// The value before corruption (for logging/debugging).
    pub original: Option<f32>,
    /// The value after corruption.
    pub corrupted: Option<f32>,
}

impl FaultInjector {
    /// Build an injector for a site.
    pub fn new(site: FaultSite) -> Self {
        FaultInjector {
            site,
            fired: false,
            original: None,
            corrupted: None,
        }
    }

    /// Has the fault been injected yet?
    pub fn fired(&self) -> bool {
        self.fired
    }

    /// The target site.
    pub fn site(&self) -> &FaultSite {
        &self.site
    }
}

impl LayerTap for FaultInjector {
    fn on_output(&mut self, ctx: &TapCtx, data: &mut Matrix) {
        if self.fired
            || ctx.hook != HookKind::LinearOutput
            || ctx.step != self.site.step
            || ctx.point != self.site.point
        {
            return;
        }
        // The sampler draws elements within this step's output shape; guard
        // with a modulo so a mismatched prompt length cannot go out of
        // bounds.
        let idx = self.site.element % data.len();
        let format = ctx.dtype.format();
        let before = data.as_slice()[idx];
        let mut v = before;
        for &bit in &self.site.bits {
            v = flip_bit_in_format(v, format, bit);
        }
        data.as_mut_slice()[idx] = v;
        self.original = Some(before);
        self.corrupted = Some(v);
        self.fired = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft2_model::{LayerKind, TapPoint};
    use ft2_tensor::DType;

    fn ctx(step: usize, layer: LayerKind) -> TapCtx {
        TapCtx {
            point: TapPoint { block: 0, layer },
            hook: HookKind::LinearOutput,
            step,
            first_pos: 0,
            dtype: DType::F16,
        }
    }

    fn site(step: usize, layer: LayerKind, element: usize, bits: Vec<u32>) -> FaultSite {
        FaultSite {
            step,
            point: TapPoint { block: 0, layer },
            element,
            bits,
        }
    }

    #[test]
    fn injects_exactly_once_at_matching_site() {
        let mut inj = FaultInjector::new(site(1, LayerKind::VProj, 2, vec![14]));
        let mut m = Matrix::from_vec(1, 4, vec![0.5, 0.5, 0.5, 0.5]);

        // Wrong step: no-op.
        inj.on_output(&ctx(0, LayerKind::VProj), &mut m);
        assert!(!inj.fired());
        assert_eq!(m.as_slice(), &[0.5; 4]);

        // Wrong layer: no-op.
        inj.on_output(&ctx(1, LayerKind::KProj), &mut m);
        assert!(!inj.fired());

        // Match: 0.5 with bit 14 flipped becomes a huge value.
        inj.on_output(&ctx(1, LayerKind::VProj), &mut m);
        assert!(inj.fired());
        assert_eq!(inj.original, Some(0.5));
        assert!(m.get(0, 2) > 1e4);
        assert_eq!(m.get(0, 0), 0.5);
        assert_eq!(m.get(0, 3), 0.5);

        // Fires only once: a second matching call is a no-op.
        let corrupted = m.get(0, 2);
        inj.on_output(&ctx(1, LayerKind::VProj), &mut m);
        assert_eq!(m.get(0, 2), corrupted);
    }

    #[test]
    fn injection_respects_storage_format() {
        // 1.5 in FP16 with top exponent bit flipped is NaN.
        let mut inj = FaultInjector::new(site(0, LayerKind::Fc1, 0, vec![14]));
        let mut m = Matrix::from_vec(1, 1, vec![1.5]);
        inj.on_output(&ctx(0, LayerKind::Fc1), &mut m);
        assert!(m.get(0, 0).is_nan());
        assert_eq!(inj.corrupted.map(f32::is_nan), Some(true));
    }

    #[test]
    fn double_bit_flips_both() {
        // Mantissa LSB flips: small perturbation of 1.0 -> stays close.
        let mut inj = FaultInjector::new(site(0, LayerKind::Fc1, 0, vec![0, 1]));
        let mut m = Matrix::from_vec(1, 1, vec![1.0]);
        inj.on_output(&ctx(0, LayerKind::Fc1), &mut m);
        let v = m.get(0, 0);
        assert!(v != 1.0 && (v - 1.0).abs() < 0.01, "v={v}");
    }

    #[test]
    fn element_index_wraps_safely() {
        let mut inj = FaultInjector::new(site(0, LayerKind::Fc1, 10, vec![15]));
        let mut m = Matrix::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]);
        inj.on_output(&ctx(0, LayerKind::Fc1), &mut m);
        // 10 % 4 == 2: sign bit flip of 3.0.
        assert_eq!(m.get(0, 2), -3.0);
    }
}
