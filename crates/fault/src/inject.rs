//! The fault-injection taps.
//!
//! Two injectors cover the fault-target taxonomy:
//!
//! * [`FaultInjector`] — a [`LayerTap`] corrupting a *computed* linear-layer
//!   output ([`FaultTarget::Activation`]). Registered as the *first* tap on
//!   the model so that a protection tap registered after it sees the
//!   corrupted output — the same ordering as a PyTorch forward hook that
//!   perturbs the output before Ranger-style hooks run.
//! * [`StateFaultInjector`] — a [`StateTap`] corrupting *stored* state
//!   ([`FaultTarget::Weight`] / [`FaultTarget::KvCache`]). Registered as the
//!   first state tap so that integrity guards registered after it observe
//!   the corruption in the same pre-forward pass ("checked on read").
//!
//! Both honour the [`FaultDuration`] schedule: transient faults strike once
//! (and stored-state transients are restored at end of step, so a rollback
//! re-decode runs clean), intermittent faults re-strike periodically (at
//! most once per distinct step), and persistent faults endure — a stuck
//! activation re-corrupts every forward pass including re-decodes, and a
//! persistent stored-state flip stays resident until the integrity layer
//! repairs it.

use crate::model::{FaultDuration, FaultTarget};
use crate::site::FaultSite;
use ft2_model::{HookKind, LayerKind, LayerTap, StateCtx, StateReport, StateTap, TapCtx};
use ft2_numeric::bits::flip_bit_in_format;
use ft2_numeric::FloatFormat;
use ft2_tensor::Matrix;

fn flip_site_bits(v: f32, bits: &[u32], format: FloatFormat) -> f32 {
    let mut v = v;
    for &bit in bits {
        v = flip_bit_in_format(v, format, bit);
    }
    v
}

/// Corrupts one element of one layer's computed output, on the schedule the
/// site's [`FaultDuration`] dictates.
pub struct FaultInjector {
    site: FaultSite,
    fired: bool,
    /// Step of the most recent strike (guards against double-striking the
    /// same step during intermittent activity or re-decodes).
    last_strike: Option<usize>,
    /// Total strikes delivered (1 for transient; ≥ 1 for the others).
    pub strikes: u64,
    /// The value before the first corruption (for logging/debugging).
    pub original: Option<f32>,
    /// The value after the first corruption.
    pub corrupted: Option<f32>,
}

impl FaultInjector {
    /// Build an injector for a site.
    pub fn new(site: FaultSite) -> Self {
        debug_assert_eq!(
            site.target,
            FaultTarget::Activation,
            "FaultInjector handles activation faults; use StateFaultInjector for stored state"
        );
        FaultInjector {
            site,
            fired: false,
            last_strike: None,
            strikes: 0,
            original: None,
            corrupted: None,
        }
    }

    /// Has the fault been injected at least once?
    pub fn fired(&self) -> bool {
        self.fired
    }

    /// The target site.
    pub fn site(&self) -> &FaultSite {
        &self.site
    }

    fn due(&self, step: usize) -> bool {
        match self.site.duration {
            // One strike, ever: a rollback re-decode of the struck step runs
            // clean, which is what makes transients recoverable.
            FaultDuration::Transient => !self.fired && step == self.site.step,
            // Periodic strikes, at most one per distinct step — a re-decode
            // of an active step is clean, like a transient.
            FaultDuration::Intermittent { .. } => {
                self.site.duration.active_at(self.site.step, step)
                    && self.last_strike != Some(step)
            }
            // A stuck functional unit: every forward pass from the strike
            // step on is corrupted, *including* rollback re-decodes — which
            // is exactly why rollback alone cannot survive it.
            FaultDuration::Persistent => step >= self.site.step,
        }
    }
}

impl LayerTap for FaultInjector {
    fn on_output(&mut self, ctx: &TapCtx, data: &mut Matrix) {
        if ctx.hook != HookKind::LinearOutput
            || ctx.point != self.site.point
            || !self.due(ctx.step)
        {
            return;
        }
        // The sampler draws elements within this step's output shape; guard
        // with a modulo so a mismatched prompt length cannot go out of
        // bounds.
        let idx = self.site.element % data.len();
        let format = ctx.dtype.format();
        let before = data.as_slice()[idx];
        let v = flip_site_bits(before, &self.site.bits, format);
        data.as_mut_slice()[idx] = v;
        if !self.fired {
            self.original = Some(before);
            self.corrupted = Some(v);
        }
        self.fired = true;
        self.last_strike = Some(ctx.step);
        self.strikes += 1;
    }
}

/// Corrupts one element of *stored* state — a weight-matrix entry or a
/// cached K/V row — in the pre-forward state pass, on the site's
/// [`FaultDuration`] schedule.
///
/// Register this as the first state tap: an integrity guard registered
/// after it then observes the corruption in the same pass, before the
/// forward consumes the poisoned state.
pub struct StateFaultInjector {
    site: FaultSite,
    fired: bool,
    last_strike: Option<usize>,
    /// `(resolved flat index, original value)` pending restoration at end of
    /// step (transient/intermittent strikes only).
    pending_restore: Option<(usize, f32)>,
    /// Total strikes delivered.
    pub strikes: u64,
    /// The value before the first corruption.
    pub original: Option<f32>,
    /// The value after the first corruption.
    pub corrupted: Option<f32>,
}

impl StateFaultInjector {
    /// Build a stored-state injector for a site targeting
    /// [`FaultTarget::Weight`] or [`FaultTarget::KvCache`].
    pub fn new(site: FaultSite) -> Self {
        debug_assert_ne!(
            site.target,
            FaultTarget::Activation,
            "activation faults use the FaultInjector layer tap"
        );
        StateFaultInjector {
            site,
            fired: false,
            last_strike: None,
            pending_restore: None,
            strikes: 0,
            original: None,
            corrupted: None,
        }
    }

    /// Has the fault been injected at least once?
    pub fn fired(&self) -> bool {
        self.fired
    }

    /// The target site.
    pub fn site(&self) -> &FaultSite {
        &self.site
    }

    fn due(&self, step: usize) -> bool {
        match self.site.duration {
            FaultDuration::Transient => !self.fired && step == self.site.step,
            FaultDuration::Intermittent { .. } => {
                self.site.duration.active_at(self.site.step, step)
                    && self.last_strike != Some(step)
            }
            // Persistent stored-state corruption endures on its own — one
            // strike suffices, and every later read sees it until the
            // integrity layer repairs the location.
            FaultDuration::Persistent => !self.fired && step >= self.site.step,
        }
    }

    /// The storage this site targets, as a mutable flat f32 buffer.
    fn storage<'c>(&self, ctx: &'c mut StateCtx<'_>) -> &'c mut [f32] {
        let b = self.site.point.block;
        match self.site.target {
            FaultTarget::Weight => ctx
                .weights
                .blocks[b]
                .layer_mut(self.site.point.layer)
                .expect("sampled weight layer missing")
                .weight
                .as_mut_slice(),
            FaultTarget::KvCache => {
                let blk = ctx.cache.block_mut(b);
                match self.site.point.layer {
                    LayerKind::KProj => blk.k.as_mut_slice(),
                    _ => blk.v.as_mut_slice(),
                }
            }
            FaultTarget::Activation => unreachable!("checked in new()"),
        }
    }
}

impl StateTap for StateFaultInjector {
    fn on_step_state(&mut self, ctx: &mut StateCtx<'_>) -> StateReport {
        if !self.due(ctx.step) {
            return StateReport::default();
        }
        let format = ctx.dtype.format();
        let bits = self.site.bits.clone();
        let element = self.site.element;
        let duration = self.site.duration;
        let data = self.storage(ctx);
        if data.is_empty() {
            return StateReport::default();
        }
        let idx = element % data.len();
        let before = data[idx];
        let v = flip_site_bits(before, &bits, format);
        data[idx] = v;
        if !self.fired {
            self.original = Some(before);
            self.corrupted = Some(v);
        }
        if !matches!(duration, FaultDuration::Persistent) {
            // Bounded-duration upsets vanish when the step ends; remember
            // the resolved index so the restore hits the same location even
            // if the buffer has since grown.
            self.pending_restore = Some((idx, before));
        }
        self.fired = true;
        self.last_strike = Some(ctx.step);
        self.strikes += 1;
        StateReport::default()
    }

    fn on_step_end(&mut self, ctx: &mut StateCtx<'_>) {
        if let Some((idx, orig)) = self.pending_restore.take() {
            let data = self.storage(ctx);
            // A guard-triggered rebuild may have truncated the buffer (and
            // already restored clean contents) — only write in bounds.
            if idx < data.len() {
                data[idx] = orig;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft2_model::{KvCache, LayerKind, ModelConfig, TapPoint};
    use ft2_model::weights::ModelWeights;
    use ft2_tensor::DType;

    fn ctx(step: usize, layer: LayerKind) -> TapCtx {
        TapCtx {
            point: TapPoint { block: 0, layer },
            hook: HookKind::LinearOutput,
            step,
            first_pos: 0,
            dtype: DType::F16,
        }
    }

    fn site(step: usize, layer: LayerKind, element: usize, bits: Vec<u32>) -> FaultSite {
        FaultSite {
            step,
            point: TapPoint { block: 0, layer },
            element,
            bits,
            duration: FaultDuration::Transient,
            target: FaultTarget::Activation,
        }
    }

    #[test]
    fn injects_exactly_once_at_matching_site() {
        let mut inj = FaultInjector::new(site(1, LayerKind::VProj, 2, vec![14]));
        let mut m = Matrix::from_vec(1, 4, vec![0.5, 0.5, 0.5, 0.5]);

        // Wrong step: no-op.
        inj.on_output(&ctx(0, LayerKind::VProj), &mut m);
        assert!(!inj.fired());
        assert_eq!(m.as_slice(), &[0.5; 4]);

        // Wrong layer: no-op.
        inj.on_output(&ctx(1, LayerKind::KProj), &mut m);
        assert!(!inj.fired());

        // Match: 0.5 with bit 14 flipped becomes a huge value.
        inj.on_output(&ctx(1, LayerKind::VProj), &mut m);
        assert!(inj.fired());
        assert_eq!(inj.original, Some(0.5));
        assert!(m.get(0, 2) > 1e4);
        assert_eq!(m.get(0, 0), 0.5);
        assert_eq!(m.get(0, 3), 0.5);

        // Fires only once: a second matching call is a no-op.
        let corrupted = m.get(0, 2);
        inj.on_output(&ctx(1, LayerKind::VProj), &mut m);
        assert_eq!(m.get(0, 2), corrupted);
        assert_eq!(inj.strikes, 1);
    }

    #[test]
    fn injection_respects_storage_format() {
        // 1.5 in FP16 with top exponent bit flipped is NaN.
        let mut inj = FaultInjector::new(site(0, LayerKind::Fc1, 0, vec![14]));
        let mut m = Matrix::from_vec(1, 1, vec![1.5]);
        inj.on_output(&ctx(0, LayerKind::Fc1), &mut m);
        assert!(m.get(0, 0).is_nan());
        assert_eq!(inj.corrupted.map(f32::is_nan), Some(true));
    }

    #[test]
    fn double_bit_flips_both() {
        // Mantissa LSB flips: small perturbation of 1.0 -> stays close.
        let mut inj = FaultInjector::new(site(0, LayerKind::Fc1, 0, vec![0, 1]));
        let mut m = Matrix::from_vec(1, 1, vec![1.0]);
        inj.on_output(&ctx(0, LayerKind::Fc1), &mut m);
        let v = m.get(0, 0);
        assert!(v != 1.0 && (v - 1.0).abs() < 0.01, "v={v}");
    }

    #[test]
    fn element_index_wraps_safely() {
        let mut inj = FaultInjector::new(site(0, LayerKind::Fc1, 10, vec![15]));
        let mut m = Matrix::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]);
        inj.on_output(&ctx(0, LayerKind::Fc1), &mut m);
        // 10 % 4 == 2: sign bit flip of 3.0.
        assert_eq!(m.get(0, 2), -3.0);
    }

    #[test]
    fn persistent_activation_restrikes_every_step() {
        let mut s = site(1, LayerKind::VProj, 0, vec![15]);
        s.duration = FaultDuration::Persistent;
        let mut inj = FaultInjector::new(s);
        let mut m = Matrix::from_vec(1, 1, vec![2.0]);
        inj.on_output(&ctx(0, LayerKind::VProj), &mut m);
        assert_eq!(m.get(0, 0), 2.0); // before the strike step
        inj.on_output(&ctx(1, LayerKind::VProj), &mut m);
        assert_eq!(m.get(0, 0), -2.0);
        // Re-decode of the same step strikes again (stuck unit).
        m.set(0, 0, 2.0);
        inj.on_output(&ctx(1, LayerKind::VProj), &mut m);
        assert_eq!(m.get(0, 0), -2.0);
        inj.on_output(&ctx(5, LayerKind::VProj), &mut m);
        assert_eq!(m.get(0, 0), 2.0); // flipped back: strikes every pass
        assert_eq!(inj.strikes, 3);
    }

    #[test]
    fn intermittent_activation_strikes_once_per_active_step() {
        let mut s = site(1, LayerKind::VProj, 0, vec![15]);
        s.duration = FaultDuration::Intermittent { period: 2 };
        let mut inj = FaultInjector::new(s);
        let mut m = Matrix::from_vec(1, 1, vec![1.0]);
        inj.on_output(&ctx(1, LayerKind::VProj), &mut m);
        assert_eq!(m.get(0, 0), -1.0);
        // Same step again (re-decode): clean.
        m.set(0, 0, 1.0);
        inj.on_output(&ctx(1, LayerKind::VProj), &mut m);
        assert_eq!(m.get(0, 0), 1.0);
        // Off-period step: clean. Next active step (3): strikes.
        inj.on_output(&ctx(2, LayerKind::VProj), &mut m);
        assert_eq!(m.get(0, 0), 1.0);
        inj.on_output(&ctx(3, LayerKind::VProj), &mut m);
        assert_eq!(m.get(0, 0), -1.0);
        assert_eq!(inj.strikes, 2);
    }

    fn state_parts() -> (ModelConfig, ModelWeights, ModelWeights, KvCache) {
        let config = ModelConfig::tiny_opt();
        let golden = ModelWeights::build(&config);
        let live = golden.clone();
        let cache = KvCache::new(&config);
        (config, golden, live, cache)
    }

    #[test]
    fn persistent_weight_fault_endures_across_steps() {
        let (_, golden, mut live, mut cache) = state_parts();
        let mut s = site(1, LayerKind::Fc1, 5, vec![15]);
        s.duration = FaultDuration::Persistent;
        s.target = FaultTarget::Weight;
        let mut inj = StateFaultInjector::new(s);
        let before = live.blocks[0].fc.as_ref().unwrap().0.weight.get_flat(5);
        for step in 1..3 {
            let mut ctx = StateCtx {
                step,
                prompt_len: 4,
                weights: &mut live,
                cache: &mut cache,
                golden: &golden,
                dtype: DType::F16,
            };
            inj.on_step_state(&mut ctx);
            inj.on_step_end(&mut ctx);
        }
        assert_eq!(inj.strikes, 1);
        let after = live.blocks[0].fc.as_ref().unwrap().0.weight.get_flat(5);
        assert_eq!(after, -before, "sign flip must persist past end-of-step");
    }

    #[test]
    fn transient_weight_fault_is_restored_at_step_end() {
        let (_, golden, mut live, mut cache) = state_parts();
        let mut s = site(1, LayerKind::VProj, 9, vec![14]);
        s.target = FaultTarget::Weight;
        let mut inj = StateFaultInjector::new(s);
        let before = live.blocks[0].v_proj.weight.get_flat(9);
        let mut ctx = StateCtx {
            step: 1,
            prompt_len: 4,
            weights: &mut live,
            cache: &mut cache,
            golden: &golden,
            dtype: DType::F16,
        };
        inj.on_step_state(&mut ctx);
        assert_ne!(ctx.weights.blocks[0].v_proj.weight.get_flat(9), before);
        inj.on_step_end(&mut ctx);
        assert_eq!(live.blocks[0].v_proj.weight.get_flat(9), before);
        // Later steps: no re-strike.
        let mut ctx = StateCtx {
            step: 2,
            prompt_len: 4,
            weights: &mut live,
            cache: &mut cache,
            golden: &golden,
            dtype: DType::F16,
        };
        inj.on_step_state(&mut ctx);
        assert_eq!(live.blocks[0].v_proj.weight.get_flat(9), before);
        assert_eq!(inj.strikes, 1);
    }

    #[test]
    fn kv_fault_targets_the_cached_rows() {
        let (config, golden, mut live, mut cache) = state_parts();
        // Put 4 rows in every block's cache.
        let rows = Matrix::from_vec(4, config.hidden, vec![1.0; 4 * config.hidden]);
        for b in 0..cache.num_blocks() {
            let blk = cache.block_mut(b);
            blk.k.append_rows(&rows);
            blk.v.append_rows(&rows);
        }
        let mut s = site(1, LayerKind::KProj, 3, vec![15]);
        s.duration = FaultDuration::Persistent;
        s.target = FaultTarget::KvCache;
        let mut inj = StateFaultInjector::new(s);
        let mut ctx = StateCtx {
            step: 1,
            prompt_len: 4,
            weights: &mut live,
            cache: &mut cache,
            golden: &golden,
            dtype: DType::F16,
        };
        inj.on_step_state(&mut ctx);
        inj.on_step_end(&mut ctx);
        assert_eq!(cache.block(0).k.get_flat(3), -1.0);
        assert_eq!(cache.block(0).v.get_flat(3), 1.0, "V untouched for a K site");
    }
}
