//! Campaign checkpointing: crash-safe persistence of partial results.
//!
//! A full campaign (`inputs × trials` generations) can run for hours; an
//! OOM-kill or a pre-empted node should not forfeit the completed work. The
//! campaign engine therefore persists, every `CheckpointPolicy::every`
//! tasks, the aggregate [`CampaignResult`] over the completed task prefix
//! `0..completed_tasks` together with a config *fingerprint*. Because every
//! trial derives its RNG stream from `(seed, input, trial)` and aggregation
//! folds records in task order, resuming from `completed_tasks` reproduces
//! the uninterrupted run bit for bit.
//!
//! The format is a small hand-rolled JSON document (the workspace is
//! dependency-free, so no serde): human-inspectable, written atomically via
//! a temp file + rename so a crash mid-write can never corrupt an existing
//! checkpoint. Documents carry a `"version"` key (current:
//! [`CHECKPOINT_VERSION`]); version-2 documents (which predate the key, the
//! fault-duration taxonomy, and the integrity counters) still load, with the
//! new counters zeroed. Unknown or future versions are rejected with a
//! clear error instead of being misparsed.

use crate::campaign::{CampaignResult, TrialFailure};
use crate::outcome::OutcomeCounts;
use ft2_model::LayerKind;
use std::fmt::Write as _;
use std::path::Path;

/// Current checkpoint document version. Version 5 added the `failed_over`
/// outcome counter plus the `failovers` / `replica_rebuilds` scalars
/// (cross-replica failover); version 4 added the `degraded` counter,
/// version-3 documents carry 8-element count rows and version-2 documents
/// (no `"version"` key) 7-element rows — all remain loadable with the
/// missing counters zeroed. Versions above this are rejected.
pub const CHECKPOINT_VERSION: u64 = 5;

/// A persisted campaign prefix: everything needed to resume.
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignCheckpoint {
    /// Fingerprint of the campaign configuration; a resume with a different
    /// fingerprint is rejected rather than silently merged.
    pub fingerprint: String,
    /// Number of tasks (in task order) folded into `result`.
    pub completed_tasks: usize,
    /// Aggregate over tasks `0..completed_tasks`.
    pub result: CampaignResult,
}

impl CampaignCheckpoint {
    /// Serialise to the checkpoint JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"version\": {CHECKPOINT_VERSION},");
        let _ = writeln!(s, "  \"fingerprint\": {},", quote(&self.fingerprint));
        let _ = writeln!(s, "  \"completed_tasks\": {},", self.completed_tasks);
        let _ = writeln!(s, "  \"counts\": {},", counts_json(&self.result.counts));
        s.push_str("  \"per_layer\": {");
        for (i, (k, v)) in self.result.per_layer.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "{}: {}", quote(k.name()), counts_json(v));
        }
        s.push_str("},\n  \"per_bit_class\": {");
        for (i, (k, v)) in self.result.per_bit_class.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "{}: {}", quote(k), counts_json(v));
        }
        s.push_str("},\n");
        let _ = writeln!(
            s,
            "  \"first_token_faults\": {},",
            counts_json(&self.result.first_token_faults)
        );
        s.push_str("  \"crashes\": [");
        for (i, c) in self.result.crashes.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(
                s,
                "[{}, {}, {}, {}]",
                c.input,
                c.trial,
                quote(&c.site),
                quote(&c.message)
            );
        }
        s.push_str("],\n");
        let _ = writeln!(s, "  \"rollbacks\": {},", self.result.rollbacks);
        let _ = writeln!(s, "  \"storms\": {},", self.result.storms);
        let _ = writeln!(s, "  \"scrubbed_tiles\": {},", self.result.scrubbed_tiles);
        let _ = writeln!(s, "  \"weight_repairs\": {},", self.result.weight_repairs);
        let _ = writeln!(s, "  \"kv_repairs\": {},", self.result.kv_repairs);
        let _ = writeln!(s, "  \"repair_retries\": {},", self.result.repair_retries);
        let _ = writeln!(s, "  \"failovers\": {},", self.result.failovers);
        let _ = writeln!(s, "  \"replica_rebuilds\": {}", self.result.replica_rebuilds);
        s.push_str("}\n");
        s
    }

    /// Parse a checkpoint document.
    pub fn from_json(text: &str) -> Result<CampaignCheckpoint, String> {
        let v = Json::parse(text)?;
        let obj = v.as_obj("checkpoint")?;
        // Version 2 documents predate the "version" key.
        let version = match get_opt(obj, "version") {
            Some(v) => v.as_u64("version")?,
            None => 2,
        };
        if version > CHECKPOINT_VERSION {
            return Err(format!(
                "checkpoint version {version} is newer than this binary supports \
                 (max {CHECKPOINT_VERSION}); upgrade ft2 or delete the checkpoint \
                 to restart the campaign"
            ));
        }
        if version < 2 {
            return Err(format!(
                "unknown checkpoint version {version} (supported: 2..={CHECKPOINT_VERSION})"
            ));
        }
        let mut result = CampaignResult {
            counts: parse_counts(get(obj, "counts")?)?,
            first_token_faults: parse_counts(get(obj, "first_token_faults")?)?,
            ..CampaignResult::default()
        };
        for (name, v) in get(obj, "per_layer")?.as_obj("per_layer")? {
            let kind = LayerKind::ALL
                .iter()
                .find(|k| k.name() == name)
                .ok_or_else(|| format!("unknown layer kind {name:?}"))?;
            result.per_layer.insert(*kind, parse_counts(v)?);
        }
        for (name, v) in get(obj, "per_bit_class")?.as_obj("per_bit_class")? {
            // Bit-class keys are interned &'static str in memory.
            let key = match name.as_str() {
                "sign" => "sign",
                "exponent" => "exponent",
                "mantissa" => "mantissa",
                other => return Err(format!("unknown bit class {other:?}")),
            };
            result.per_bit_class.insert(key, parse_counts(v)?);
        }
        for v in get(obj, "crashes")?.as_arr("crashes")? {
            let row = v.as_arr("crash row")?;
            if row.len() != 4 {
                return Err("crash row must have 4 fields".to_string());
            }
            result.crashes.push(TrialFailure {
                input: row[0].as_u64("crash input")? as usize,
                trial: row[1].as_u64("crash trial")? as usize,
                site: row[2].as_str("crash site")?.to_string(),
                message: row[3].as_str("crash message")?.to_string(),
            });
        }
        result.rollbacks = get(obj, "rollbacks")?.as_u64("rollbacks")?;
        result.storms = get(obj, "storms")?.as_u64("storms")?;
        // Integrity counters arrived in version 3; older documents load
        // with them zeroed.
        result.scrubbed_tiles = get_u64_or(obj, "scrubbed_tiles", 0)?;
        result.weight_repairs = get_u64_or(obj, "weight_repairs", 0)?;
        result.kv_repairs = get_u64_or(obj, "kv_repairs", 0)?;
        result.repair_retries = get_u64_or(obj, "repair_retries", 0)?;
        // Failover counters arrived in version 5; older documents load
        // with them zeroed.
        result.failovers = get_u64_or(obj, "failovers", 0)?;
        result.replica_rebuilds = get_u64_or(obj, "replica_rebuilds", 0)?;
        Ok(CampaignCheckpoint {
            fingerprint: get(obj, "fingerprint")?.as_str("fingerprint")?.to_string(),
            completed_tasks: get(obj, "completed_tasks")?.as_u64("completed_tasks")? as usize,
            result,
        })
    }

    /// Write atomically: temp file in the same directory, then rename. A
    /// crash mid-write leaves either the old checkpoint or none.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, self.to_json())?;
        std::fs::rename(&tmp, path)
    }

    /// Load a checkpoint if one exists; `Ok(None)` when the file is absent.
    pub fn load(path: &Path) -> Result<Option<CampaignCheckpoint>, String> {
        match std::fs::read_to_string(path) {
            Ok(text) => Self::from_json(&text).map(Some),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(format!("read {}: {e}", path.display())),
        }
    }
}

fn counts_json(c: &OutcomeCounts) -> String {
    format!(
        "[{}, {}, {}, {}, {}, {}, {}, {}, {}, {}]",
        c.masked_identical,
        c.masked_semantic,
        c.sdc,
        c.crash,
        c.hang,
        c.recovered,
        c.recovery_failed,
        c.repaired,
        c.degraded,
        c.failed_over
    )
}

fn parse_counts(v: &Json) -> Result<OutcomeCounts, String> {
    let a = v.as_arr("counts")?;
    // Version-2 documents carry 7-element count rows (no `repaired`),
    // version-3 rows 8 elements (no `degraded`), version-4 rows 9
    // elements (no `failed_over`).
    if !(7..=10).contains(&a.len()) {
        return Err(format!(
            "counts must have 7 to 10 fields, got {}",
            a.len()
        ));
    }
    Ok(OutcomeCounts {
        masked_identical: a[0].as_u64("counts[0]")?,
        masked_semantic: a[1].as_u64("counts[1]")?,
        sdc: a[2].as_u64("counts[2]")?,
        crash: a[3].as_u64("counts[3]")?,
        hang: a[4].as_u64("counts[4]")?,
        recovered: a[5].as_u64("counts[5]")?,
        recovery_failed: a[6].as_u64("counts[6]")?,
        repaired: match a.get(7) {
            Some(v) => v.as_u64("counts[7]")?,
            None => 0,
        },
        degraded: match a.get(8) {
            Some(v) => v.as_u64("counts[8]")?,
            None => 0,
        },
        failed_over: match a.get(9) {
            Some(v) => v.as_u64("counts[9]")?,
            None => 0,
        },
    })
}

fn get<'a>(obj: &'a [(String, Json)], key: &str) -> Result<&'a Json, String> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing key {key:?}"))
}

fn get_opt<'a>(obj: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn get_u64_or(obj: &[(String, Json)], key: &str, default: u64) -> Result<u64, String> {
    match get_opt(obj, key) {
        Some(v) => v.as_u64(key),
        None => Ok(default),
    }
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Minimal JSON value for the checkpoint grammar (objects, arrays, strings,
/// unsigned integers). Everything the checkpoint writer emits round-trips.
#[derive(Debug)]
enum Json {
    Obj(Vec<(String, Json)>),
    Arr(Vec<Json>),
    Str(String),
    Num(u64),
}

impl Json {
    fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(v)
    }

    fn as_obj(&self, what: &str) -> Result<&[(String, Json)], String> {
        match self {
            Json::Obj(o) => Ok(o),
            _ => Err(format!("{what}: expected object")),
        }
    }

    fn as_arr(&self, what: &str) -> Result<&[Json], String> {
        match self {
            Json::Arr(a) => Ok(a),
            _ => Err(format!("{what}: expected array")),
        }
    }

    fn as_str(&self, what: &str) -> Result<&str, String> {
        match self {
            Json::Str(s) => Ok(s),
            _ => Err(format!("{what}: expected string")),
        }
    }

    fn as_u64(&self, what: &str) -> Result<u64, String> {
        match self {
            Json::Num(n) => Ok(*n),
            _ => Err(format!("{what}: expected integer")),
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", ch as char, *pos))
    }
}

fn peek(b: &[u8], pos: &mut usize) -> Option<u8> {
    skip_ws(b, pos);
    b.get(*pos).copied()
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    match peek(b, pos) {
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            if peek(b, pos) == Some(b'}') {
                *pos += 1;
                return Ok(Json::Obj(entries));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                expect(b, pos, b':')?;
                entries.push((key, parse_value(b, pos)?));
                match peek(b, pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(entries));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            if peek(b, pos) == Some(b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                match peek(b, pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(c) if c.is_ascii_digit() => {
            let start = *pos;
            while *pos < b.len() && b[*pos].is_ascii_digit() {
                *pos += 1;
            }
            std::str::from_utf8(&b[start..*pos])
                .ok()
                .and_then(|s| s.parse::<u64>().ok())
                .map(Json::Num)
                .ok_or_else(|| format!("bad number at byte {start}"))
        }
        _ => Err(format!("unexpected value at byte {pos}")),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    // Collect raw bytes of each UTF-8 run between escapes.
    let mut run = *pos;
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                out.push_str(
                    std::str::from_utf8(&b[run..*pos]).map_err(|e| format!("bad utf8: {e}"))?,
                );
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                out.push_str(
                    std::str::from_utf8(&b[run..*pos]).map_err(|e| format!("bad utf8: {e}"))?,
                );
                *pos += 1;
                let esc = b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|e| format!("bad \\u: {e}"))?;
                        *pos += 4;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape \\{}", *other as char)),
                }
                run = *pos;
            }
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft2_model::TapPoint;

    fn sample_checkpoint() -> CampaignCheckpoint {
        let mut result = CampaignResult {
            counts: OutcomeCounts {
                masked_identical: 10,
                masked_semantic: 4,
                sdc: 3,
                crash: 2,
                hang: 1,
                recovered: 6,
                recovery_failed: 2,
                repaired: 5,
                degraded: 3,
                failed_over: 2,
            },
            rollbacks: 9,
            storms: 11,
            scrubbed_tiles: 4096,
            weight_repairs: 3,
            kv_repairs: 2,
            repair_retries: 1,
            failovers: 2,
            replica_rebuilds: 1,
            ..CampaignResult::default()
        };
        result.per_layer.insert(
            TapPoint {
                block: 0,
                layer: LayerKind::Fc1,
            }
            .layer,
            OutcomeCounts {
                masked_identical: 5,
                ..OutcomeCounts::default()
            },
        );
        result.per_bit_class.insert(
            "exponent",
            OutcomeCounts {
                sdc: 3,
                ..OutcomeCounts::default()
            },
        );
        result.first_token_faults.sdc = 1;
        result.crashes.push(TrialFailure {
            input: 2,
            trial: 17,
            site: "crates/core/src/protect.rs:88".to_string(),
            message: "index out of bounds: \"weird\"\npayload".to_string(),
        });
        CampaignCheckpoint {
            fingerprint: "seed=1|trials=50".to_string(),
            completed_tasks: 20,
            result,
        }
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let cp = sample_checkpoint();
        let parsed = CampaignCheckpoint::from_json(&cp.to_json()).unwrap();
        assert_eq!(parsed, cp);
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join("ft2-checkpoint-test");
        let path = dir.join("qa.json");
        let cp = sample_checkpoint();
        cp.save(&path).unwrap();
        let loaded = CampaignCheckpoint::load(&path).unwrap().unwrap();
        assert_eq!(loaded, cp);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_none_and_garbage_is_err() {
        let missing = std::env::temp_dir().join("ft2-no-such-checkpoint.json");
        assert_eq!(CampaignCheckpoint::load(&missing).unwrap(), None);
        assert!(CampaignCheckpoint::from_json("{nope").is_err());
        assert!(CampaignCheckpoint::from_json("{}").is_err());
    }

    #[test]
    fn future_and_unknown_versions_are_rejected_clearly() {
        let cp = sample_checkpoint();
        let future = cp.to_json().replace(
            &format!("\"version\": {CHECKPOINT_VERSION}"),
            &format!("\"version\": {}", CHECKPOINT_VERSION + 1),
        );
        let err = CampaignCheckpoint::from_json(&future).unwrap_err();
        assert!(
            err.contains("newer than this binary supports"),
            "unhelpful error: {err}"
        );
        let ancient = cp.to_json().replace(
            &format!("\"version\": {CHECKPOINT_VERSION}"),
            "\"version\": 1",
        );
        let err = CampaignCheckpoint::from_json(&ancient).unwrap_err();
        assert!(err.contains("unknown checkpoint version 1"), "{err}");
    }

    #[test]
    fn version2_documents_still_load() {
        // A v2 document: no "version" key, 7-element count rows, no
        // integrity counters.
        let v2 = r#"{
  "fingerprint": "v2|seed=1",
  "completed_tasks": 12,
  "counts": [5, 1, 3, 1, 0, 2, 0],
  "per_layer": {"FC1": [5, 1, 3, 1, 0, 2, 0]},
  "per_bit_class": {"exponent": [5, 1, 3, 1, 0, 2, 0]},
  "first_token_faults": [0, 0, 0, 0, 0, 0, 0],
  "crashes": [],
  "rollbacks": 2,
  "storms": 3
}"#;
        let cp = CampaignCheckpoint::from_json(v2).unwrap();
        assert_eq!(cp.completed_tasks, 12);
        assert_eq!(cp.result.counts.total(), 12);
        assert_eq!(cp.result.counts.repaired, 0);
        assert_eq!(cp.result.scrubbed_tiles, 0);
        assert_eq!(cp.result.weight_repairs, 0);
        assert_eq!(cp.result.kv_repairs, 0);
        assert_eq!(cp.result.repair_retries, 0);
        assert_eq!(cp.result.rollbacks, 2);
    }

    #[test]
    fn version3_documents_still_load() {
        // A v3 document: 8-element count rows (no `degraded`).
        let v3 = r#"{
  "version": 3,
  "fingerprint": "v3|seed=1",
  "completed_tasks": 9,
  "counts": [5, 1, 1, 1, 0, 0, 0, 1],
  "per_layer": {"FC1": [5, 1, 1, 1, 0, 0, 0, 1]},
  "per_bit_class": {"exponent": [5, 1, 1, 1, 0, 0, 0, 1]},
  "first_token_faults": [0, 0, 0, 0, 0, 0, 0, 0],
  "crashes": [],
  "rollbacks": 2,
  "storms": 3,
  "scrubbed_tiles": 64,
  "weight_repairs": 1,
  "kv_repairs": 0,
  "repair_retries": 1
}"#;
        let cp = CampaignCheckpoint::from_json(v3).unwrap();
        assert_eq!(cp.completed_tasks, 9);
        assert_eq!(cp.result.counts.total(), 9);
        assert_eq!(cp.result.counts.repaired, 1);
        assert_eq!(cp.result.counts.degraded, 0);
        assert_eq!(cp.result.scrubbed_tiles, 64);
    }

    #[test]
    fn version4_documents_still_load() {
        // A v4 document: 9-element count rows (no `failed_over`), no
        // failover scalars.
        let v4 = r#"{
  "version": 4,
  "fingerprint": "v4|seed=1",
  "completed_tasks": 8,
  "counts": [4, 1, 1, 0, 0, 0, 0, 1, 1],
  "per_layer": {"FC1": [4, 1, 1, 0, 0, 0, 0, 1, 1]},
  "per_bit_class": {"exponent": [4, 1, 1, 0, 0, 0, 0, 1, 1]},
  "first_token_faults": [0, 0, 0, 0, 0, 0, 0, 0, 0],
  "crashes": [],
  "rollbacks": 1,
  "storms": 2,
  "scrubbed_tiles": 32,
  "weight_repairs": 1,
  "kv_repairs": 0,
  "repair_retries": 1
}"#;
        let cp = CampaignCheckpoint::from_json(v4).unwrap();
        assert_eq!(cp.completed_tasks, 8);
        assert_eq!(cp.result.counts.total(), 8);
        assert_eq!(cp.result.counts.degraded, 1);
        assert_eq!(cp.result.counts.failed_over, 0);
        assert_eq!(cp.result.failovers, 0);
        assert_eq!(cp.result.replica_rebuilds, 0);
    }

    #[test]
    fn string_escapes_roundtrip() {
        for s in ["plain", "with \"quotes\"", "tab\tnl\nbackslash\\", "\u{1}ctl"] {
            let q = quote(s);
            let mut pos = 0;
            let back = parse_string(q.as_bytes(), &mut pos).unwrap();
            assert_eq!(back, s);
        }
    }
}
