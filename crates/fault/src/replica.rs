//! Replica-scoped fault injection for the cross-replica failover runtime.
//!
//! Where [`crate::site`] strikes one neuron computation and
//! [`crate::shard`] strikes one fault-isolation domain, this module
//! strikes one *replica* of a replicated serving deployment: the whole
//! process crashes mid-step, stops making progress (hang), or degenerates
//! into an activation storm that poisons every request routed to it. The
//! strike schedule reuses the fault-duration taxonomy
//! ([`FaultDuration`]): a transient fault strikes once, an intermittent
//! fault re-strikes on a period, and a persistent fault strikes every
//! step from its onset — the case that forces the health state machine to
//! keep the replica out of rotation.

use crate::model::FaultDuration;

/// Which replica-level failure mode to inject.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplicaFaultKind {
    /// The replica panics mid-step (process-crash analogue). Its KV state
    /// is lost; in-flight requests must fail over with their accepted
    /// tokens intact.
    Crash,
    /// The replica stops making progress mid-step; the heartbeat monitor
    /// cancels the stale beat and the step is aborted with a typed
    /// [`ReplicaHangAbort`] payload. Degrades to an immediate abort when
    /// the watchdog is disabled, so injection always stays bounded.
    Hang,
    /// Every tap-less request routed to the replica is served under a
    /// persistent activation storm (degenerate-replica analogue): the
    /// per-request ladder evicts them and the error-rate breaker
    /// quarantines the replica.
    ActStorm,
}

/// A scheduled replica fault: `kind` strikes replica `replica` on the
/// replica's own step counter, starting at `at_step`, recurring per the
/// fault-duration taxonomy.
#[derive(Debug)]
pub struct ReplicaFaultSpec {
    /// Target replica index.
    pub replica: usize,
    /// Failure mode to inject.
    pub kind: ReplicaFaultKind,
    /// First replica step the fault can strike.
    pub at_step: u64,
    /// Strike schedule relative to `at_step`.
    pub duration: FaultDuration,
    strikes: u64,
}

impl ReplicaFaultSpec {
    /// Fully parameterised constructor.
    pub fn new(
        replica: usize,
        kind: ReplicaFaultKind,
        at_step: u64,
        duration: FaultDuration,
    ) -> ReplicaFaultSpec {
        ReplicaFaultSpec {
            replica,
            kind,
            at_step,
            duration,
            strikes: 0,
        }
    }

    /// A fault that strikes exactly once, at `at_step`.
    pub fn transient(replica: usize, kind: ReplicaFaultKind, at_step: u64) -> ReplicaFaultSpec {
        ReplicaFaultSpec::new(replica, kind, at_step, FaultDuration::Transient)
    }

    /// A fault that strikes every step from `at_step` on.
    pub fn persistent(replica: usize, kind: ReplicaFaultKind, at_step: u64) -> ReplicaFaultSpec {
        ReplicaFaultSpec::new(replica, kind, at_step, FaultDuration::Persistent)
    }

    /// Strikes delivered so far.
    pub fn strikes(&self) -> u64 {
        self.strikes
    }

    /// Would the fault strike `replica` at that replica's `step`?
    /// Non-consuming probe — routers use it to decide whether a replica is
    /// currently degenerate without spending the strike.
    pub fn due_at(&self, replica: usize, step: u64) -> bool {
        if replica != self.replica {
            return false;
        }
        match self.duration {
            FaultDuration::Transient => step == self.at_step && self.strikes == 0,
            FaultDuration::Intermittent { period } => {
                step >= self.at_step
                    && (step - self.at_step).is_multiple_of(period.max(1) as u64)
            }
            FaultDuration::Persistent => step >= self.at_step,
        }
    }

    /// Does the fault strike `replica` at that replica's `step`? A strike
    /// is recorded, so a transient fault fires exactly once.
    pub fn strike_due(&mut self, replica: usize, step: u64) -> bool {
        let due = self.due_at(replica, step);
        if due {
            self.strikes += 1;
        }
        due
    }
}

/// Typed panic payload for a replica step aborted by the heartbeat
/// monitor: the failover router downcasts the caught panic to classify it
/// as a hang (watchdog abort) rather than a crash.
#[derive(Debug)]
pub struct ReplicaHangAbort {
    /// Heartbeat slot / replica index that hung.
    pub replica: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_fault_strikes_exactly_once() {
        let mut f = ReplicaFaultSpec::transient(1, ReplicaFaultKind::Crash, 3);
        assert!(!f.strike_due(1, 2));
        assert!(!f.strike_due(0, 3), "wrong replica never strikes");
        assert!(f.strike_due(1, 3));
        assert!(!f.strike_due(1, 3), "transient fault fires once");
        assert!(!f.strike_due(1, 4));
        assert_eq!(f.strikes(), 1);
    }

    #[test]
    fn intermittent_fault_strikes_on_period() {
        let mut f = ReplicaFaultSpec::new(
            0,
            ReplicaFaultKind::Hang,
            2,
            FaultDuration::Intermittent { period: 3 },
        );
        assert!(f.strike_due(0, 2));
        assert!(!f.strike_due(0, 3));
        assert!(!f.strike_due(0, 4));
        assert!(f.strike_due(0, 5));
        assert_eq!(f.strikes(), 2);
    }

    #[test]
    fn persistent_fault_strikes_every_step_from_onset() {
        let mut f = ReplicaFaultSpec::persistent(2, ReplicaFaultKind::ActStorm, 1);
        assert!(!f.strike_due(2, 0));
        for step in 1..6 {
            assert!(f.strike_due(2, step), "step {step}");
        }
        assert_eq!(f.strikes(), 5);
    }
}
