#![warn(missing_docs)]
//! # ft2-fault
//!
//! The fault-injection framework (the paper's §2.2–§2.3).
//!
//! * [`model`] — the three fault models: single-bit flip (*1-bit*),
//!   double-bit flip (*2-bit*), and single-bit flip restricted to exponent
//!   bits (*EXP*, the most aggressive).
//! * [`site`] — fault-site sampling: a site is `(generation step, block,
//!   layer, element, bits)`, drawn uniformly over all neuron *computations*
//!   of the linear layers in decoder blocks (prefill positions weight the
//!   first step accordingly). One fault per inference, per the paper's
//!   single-fault assumption.
//! * [`inject`] — the injector [`ft2_model::LayerTap`]: corrupts exactly one
//!   stored element of one layer output, in the tensor's storage format.
//! * [`outcome`] — Masked / SDC outcome taxonomy and the judge trait
//!   (implemented on answer spans by `ft2-tasks`).
//! * [`campaign`] — the statistical fault-injection campaign engine: runs
//!   `inputs × trials` independent generations on a work-stealing pool with
//!   per-trial derived RNG streams (bit-reproducible at any thread count)
//!   and aggregates SDC rates with 95% confidence intervals.

pub mod campaign;
pub mod dmr;
pub mod inject;
pub mod model;
pub mod outcome;
pub mod site;

pub use campaign::{Campaign, CampaignConfig, CampaignResult, ProtectionFactory, Unprotected};
pub use dmr::{run_dmr_campaign, DmrReport};
pub use inject::FaultInjector;
pub use model::FaultModel;
pub use outcome::{ExactJudge, Outcome, OutcomeCounts, OutcomeJudge};
pub use site::{FaultSite, SiteSampler, StepFilter, StepWeighting};
