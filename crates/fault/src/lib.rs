#![warn(missing_docs)]
//! # ft2-fault
//!
//! The fault-injection framework (the paper's §2.2–§2.3).
//!
//! * [`model`] — the three fault models: single-bit flip (*1-bit*),
//!   double-bit flip (*2-bit*), and single-bit flip restricted to exponent
//!   bits (*EXP*, the most aggressive); plus the fault-*duration* taxonomy
//!   (transient / intermittent / persistent) and fault *targets*
//!   (activations / weights / KV cache).
//! * [`site`] — fault-site sampling: a site is `(generation step, block,
//!   layer, element, bits)`, drawn uniformly over all neuron *computations*
//!   of the linear layers in decoder blocks (prefill positions weight the
//!   first step accordingly). One fault per inference, per the paper's
//!   single-fault assumption.
//! * [`inject`] — the injector [`ft2_model::LayerTap`]: corrupts exactly one
//!   stored element of one layer output, in the tensor's storage format.
//! * [`outcome`] — Masked / SDC outcome taxonomy and the judge trait
//!   (implemented on answer spans by `ft2-tasks`).
//! * [`campaign`] — the statistical fault-injection campaign engine: runs
//!   `inputs × trials` independent generations on a work-stealing pool with
//!   per-trial derived RNG streams (bit-reproducible at any thread count)
//!   and aggregates SDC rates with 95% confidence intervals. Trials run
//!   under panic isolation (crashes become [`Outcome::Crash`], watchdog
//!   aborts become [`Outcome::Hang`]) and campaigns checkpoint their
//!   aggregate for bit-identical resume after an interruption.
//! * [`watchdog`] — the per-trial watchdog tap (wall-clock deadline and
//!   generation-step budget) behind the Hang classification.
//! * [`checkpoint`] — crash-safe JSON persistence of partial campaign
//!   results.
//! * [`trace`] — the anomaly-recording tap behind `ft2-repro replay`.
//! * [`shard`] — shard-scoped fault modes ([`ShardFault`]) for the sharded
//!   executor's fault-isolation domains, and the [`classify_sharded`]
//!   mapping into this taxonomy (including [`Outcome::Degraded`]).
//! * [`replica`] — replica-scoped fault modes ([`ReplicaFaultSpec`]:
//!   crash / hang / activation storm across the duration taxonomy) for
//!   the cross-replica failover runtime, and the typed
//!   [`ReplicaHangAbort`] panic payload behind its hang classification
//!   (mapping into [`Outcome::FailedOver`]).
//! * [`live`] — typed faults ([`LiveFault`]) parsed from the web demo's
//!   `POST /inject` control and mapped onto the injectors above.

pub mod campaign;
pub mod checkpoint;
pub mod dmr;
pub mod inject;
pub mod live;
pub mod model;
pub mod outcome;
pub mod replica;
pub mod shard;
pub mod site;
pub mod trace;
pub mod watchdog;

pub use campaign::{
    Campaign, CampaignConfig, CampaignResult, CampaignRun, CheckpointPolicy, ProtectionFactory,
    TrialFailure, TrialRecord, TrialTrace, Unprotected,
};
pub use checkpoint::{CampaignCheckpoint, CHECKPOINT_VERSION};
pub use dmr::{run_dmr_campaign, DmrReport};
pub use inject::{FaultInjector, StateFaultInjector};
pub use live::LiveFault;
pub use model::{FaultDuration, FaultModel, FaultTarget};
pub use outcome::{ExactJudge, Outcome, OutcomeCounts, OutcomeJudge};
pub use replica::{ReplicaFaultKind, ReplicaFaultSpec, ReplicaHangAbort};
pub use shard::{classify_sharded, ShardFault, ShardFaultInjector, ShardFaultSpec};
pub use site::{FaultSite, SiteSampler, StepFilter, StepWeighting};
pub use trace::{TraceEvent, TraceTap};
pub use watchdog::{TrialAbort, WatchdogTap};
