//! Fault-injection outcome taxonomy (§2.3).
//!
//! Beyond the paper's three-way masked/semantic/SDC split, the campaign
//! engine distinguishes two *detected unrecoverable error* (DUE) classes
//! that real fault campaigns must survive rather than crash on:
//! [`Outcome::Crash`] (the trial panicked — corrupted index, NaN cascade
//! tripping an assert, a buggy protection tap) and [`Outcome::Hang`] (the
//! trial exceeded its watchdog budget).

/// The outcome of a single fault-injection trial.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// Output bit-identical to the fault-free reference.
    MaskedIdentical,
    /// Output differs but is semantically correct (contains the reference
    /// answer — "The number of people is 5" vs "There are 5 people").
    MaskedSemantic,
    /// Silent data corruption: the answer is wrong.
    Sdc,
    /// The trial panicked (detected unrecoverable error).
    Crash {
        /// `file:line` where the panic was raised, when known.
        site: String,
        /// The panic message.
        message: String,
    },
    /// The trial exceeded its watchdog budget (wall-clock deadline or token
    /// budget) and was aborted.
    Hang,
    /// The anomaly detector stormed, the engine rolled the token back, and
    /// the re-decoded output was masked — the fault was actively survived.
    Recovered {
        /// Rollback re-decodes spent across the generation.
        retries: u32,
    },
    /// The integrity layer repaired corrupted stored state (a weight tile
    /// restored from the golden copy, or poisoned KV-cache rows invalidated
    /// and re-decoded) and the final output was masked. Distinguished from
    /// [`Outcome::Recovered`] because plain rollback cannot survive a
    /// persistent fault — repair is what made the difference.
    Repaired {
        /// Stored-state repairs performed (weight tiles + KV rebuilds).
        repairs: u64,
    },
    /// Rollback recovery was attempted but the retry budget was exhausted
    /// with the step still storming (detected, unrecovered — a DUE).
    RecoveryFailed {
        /// Rollback re-decodes spent before giving up.
        retries: u32,
    },
    /// Sharded execution evicted one or more failed shards and kept
    /// generating on the survivors. Availability was preserved — every
    /// requested token was served — but the re-partitioned reduce seam may
    /// drift from the reference, so the output is *not* claimed masked.
    /// Never silent: the shard loss is always reported.
    Degraded {
        /// Shards evicted during the generation.
        shards_lost: u32,
    },
    /// The serving replica handling the request crashed, hung, or was
    /// quarantined mid-generation and a survivor took over. Accepted
    /// tokens were kept and the handoff re-prefill is bit-identical to
    /// solo generation, so the final output is masked — but the failover
    /// is never silent: the replica loss is always reported and priced.
    FailedOver {
        /// Replica failovers the request survived.
        failovers: u32,
    },
}

impl Outcome {
    /// Is this outcome masked (either kind)? A recovered trial counts: its
    /// final output is correct.
    pub fn is_masked(&self) -> bool {
        matches!(
            self,
            Outcome::MaskedIdentical
                | Outcome::MaskedSemantic
                | Outcome::Recovered { .. }
                | Outcome::Repaired { .. }
                | Outcome::FailedOver { .. }
        )
    }

    /// Is this outcome a detected unrecoverable error (crash, hang, or
    /// exhausted recovery)?
    pub fn is_due(&self) -> bool {
        matches!(
            self,
            Outcome::Crash { .. } | Outcome::Hang | Outcome::RecoveryFailed { .. }
        )
    }
}

/// Counters over trial outcomes, mergeable for parallel reduction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OutcomeCounts {
    /// Bit-identical outputs.
    pub masked_identical: u64,
    /// Semantically-equivalent outputs.
    pub masked_semantic: u64,
    /// Silent data corruptions.
    pub sdc: u64,
    /// Trials that panicked (DUE).
    pub crash: u64,
    /// Trials aborted by the watchdog (DUE).
    pub hang: u64,
    /// Trials recovered by token rollback (masked after re-decode).
    pub recovered: u64,
    /// Trials whose rollback retry budget was exhausted (DUE).
    pub recovery_failed: u64,
    /// Trials masked by stored-state repair (scrub/KV-guard + golden-copy
    /// restore or cache rebuild).
    pub repaired: u64,
    /// Trials that kept serving after evicting failed shards (degraded
    /// mode — available but not claimed masked).
    pub degraded: u64,
    /// Requests handed off to a surviving replica mid-generation with a
    /// bit-identical continuation (masked; the replica loss is reported).
    pub failed_over: u64,
}

impl OutcomeCounts {
    /// Record one outcome.
    pub fn record(&mut self, o: &Outcome) {
        match o {
            Outcome::MaskedIdentical => self.masked_identical += 1,
            Outcome::MaskedSemantic => self.masked_semantic += 1,
            Outcome::Sdc => self.sdc += 1,
            Outcome::Crash { .. } => self.crash += 1,
            Outcome::Hang => self.hang += 1,
            Outcome::Recovered { .. } => self.recovered += 1,
            Outcome::RecoveryFailed { .. } => self.recovery_failed += 1,
            Outcome::Repaired { .. } => self.repaired += 1,
            Outcome::Degraded { .. } => self.degraded += 1,
            Outcome::FailedOver { .. } => self.failed_over += 1,
        }
    }

    /// Merge another counter set (parallel reduction).
    pub fn merge(&mut self, other: &OutcomeCounts) {
        self.masked_identical += other.masked_identical;
        self.masked_semantic += other.masked_semantic;
        self.sdc += other.sdc;
        self.crash += other.crash;
        self.hang += other.hang;
        self.recovered += other.recovered;
        self.recovery_failed += other.recovery_failed;
        self.repaired += other.repaired;
        self.degraded += other.degraded;
        self.failed_over += other.failed_over;
    }

    /// Total trials recorded.
    pub fn total(&self) -> u64 {
        self.masked_identical
            + self.masked_semantic
            + self.sdc
            + self.crash
            + self.hang
            + self.recovered
            + self.recovery_failed
            + self.repaired
            + self.degraded
            + self.failed_over
    }

    /// Detected unrecoverable errors (crashes + hangs + exhausted
    /// recoveries).
    pub fn due(&self) -> u64 {
        self.crash + self.hang + self.recovery_failed
    }

    /// SDC rate in [0, 1] (0 for no trials).
    pub fn sdc_rate(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.sdc as f64 / t as f64
        }
    }

    /// 95% confidence half-width of the SDC rate.
    pub fn sdc_ci95(&self) -> f64 {
        ft2_numeric::proportion_ci95(self.sdc, self.total())
    }
}

/// Decides the outcome of a trial by comparing generated token streams.
pub trait OutcomeJudge: Sync {
    /// Classify `faulty` against the fault-free `reference` generation.
    fn classify(&self, reference: &[u32], faulty: &[u32]) -> Outcome;
}

/// The strictest judge: any token difference is an SDC. Useful as a lower
/// bound and for tests; real tasks use the answer-span judge in `ft2-tasks`.
pub struct ExactJudge;

impl OutcomeJudge for ExactJudge {
    fn classify(&self, reference: &[u32], faulty: &[u32]) -> Outcome {
        if reference == faulty {
            Outcome::MaskedIdentical
        } else {
            Outcome::Sdc
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_record_and_rate() {
        let mut c = OutcomeCounts::default();
        c.record(&Outcome::MaskedIdentical);
        c.record(&Outcome::MaskedIdentical);
        c.record(&Outcome::MaskedSemantic);
        c.record(&Outcome::Sdc);
        assert_eq!(c.total(), 4);
        assert!((c.sdc_rate() - 0.25).abs() < 1e-12);
        assert!(c.sdc_ci95() > 0.0);
    }

    #[test]
    fn due_outcomes_count_toward_total() {
        let mut c = OutcomeCounts::default();
        c.record(&Outcome::Crash {
            site: "x.rs:1".into(),
            message: "boom".into(),
        });
        c.record(&Outcome::Hang);
        c.record(&Outcome::Sdc);
        assert_eq!(c.total(), 3);
        assert_eq!(c.due(), 2);
        assert_eq!(c.crash, 1);
        assert_eq!(c.hang, 1);
        // DUE trials dilute the SDC rate: they are observed, non-silent
        // failures, so they belong in the denominator.
        assert!((c.sdc_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_fields() {
        let mut a = OutcomeCounts {
            masked_identical: 1,
            masked_semantic: 2,
            sdc: 3,
            crash: 4,
            hang: 5,
            recovered: 6,
            recovery_failed: 7,
            repaired: 8,
            degraded: 9,
            failed_over: 10,
        };
        let b = OutcomeCounts {
            masked_identical: 10,
            masked_semantic: 20,
            sdc: 30,
            crash: 40,
            hang: 50,
            recovered: 60,
            recovery_failed: 70,
            repaired: 80,
            degraded: 90,
            failed_over: 100,
        };
        a.merge(&b);
        assert_eq!(a.masked_identical, 11);
        assert_eq!(a.masked_semantic, 22);
        assert_eq!(a.sdc, 33);
        assert_eq!(a.crash, 44);
        assert_eq!(a.hang, 55);
        assert_eq!(a.recovered, 66);
        assert_eq!(a.recovery_failed, 77);
        assert_eq!(a.repaired, 88);
        assert_eq!(a.degraded, 99);
        assert_eq!(a.failed_over, 110);
        assert_eq!(a.total(), 11 + 22 + 33 + 44 + 55 + 66 + 77 + 88 + 99 + 110);
    }

    #[test]
    fn degraded_outcome_is_neither_masked_nor_due() {
        let d = Outcome::Degraded { shards_lost: 1 };
        assert!(!d.is_masked(), "degraded output may drift — not masked");
        assert!(!d.is_due(), "degraded mode kept serving — not a DUE");
        let mut c = OutcomeCounts::default();
        c.record(&d);
        assert_eq!(c.degraded, 1);
        assert_eq!(c.total(), 1);
        assert_eq!(c.due(), 0);
    }

    #[test]
    fn failed_over_outcome_is_masked_not_due() {
        let f = Outcome::FailedOver { failovers: 1 };
        assert!(f.is_masked(), "handoff continuation is bit-identical");
        assert!(!f.is_due(), "the request was served to completion");
        let mut c = OutcomeCounts::default();
        c.record(&f);
        assert_eq!(c.failed_over, 1);
        assert_eq!(c.total(), 1);
        assert_eq!(c.due(), 0);
        assert_eq!(c.sdc_rate(), 0.0);
    }

    #[test]
    fn repaired_outcome_is_masked_not_due() {
        let r = Outcome::Repaired { repairs: 2 };
        assert!(r.is_masked());
        assert!(!r.is_due());
        let mut c = OutcomeCounts::default();
        c.record(&r);
        assert_eq!(c.repaired, 1);
        assert_eq!(c.total(), 1);
        assert_eq!(c.sdc_rate(), 0.0);
    }

    #[test]
    fn recovery_outcomes_classify_and_count() {
        let rec = Outcome::Recovered { retries: 1 };
        let fail = Outcome::RecoveryFailed { retries: 3 };
        assert!(rec.is_masked());
        assert!(!rec.is_due());
        assert!(fail.is_due());
        assert!(!fail.is_masked());
        let mut c = OutcomeCounts::default();
        c.record(&rec);
        c.record(&fail);
        c.record(&Outcome::Sdc);
        assert_eq!(c.total(), 3);
        assert_eq!(c.recovered, 1);
        assert_eq!(c.recovery_failed, 1);
        assert_eq!(c.due(), 1);
        assert!((c.sdc_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn exact_judge() {
        let j = ExactJudge;
        assert_eq!(j.classify(&[1, 2, 3], &[1, 2, 3]), Outcome::MaskedIdentical);
        assert_eq!(j.classify(&[1, 2, 3], &[1, 2, 4]), Outcome::Sdc);
        assert!(Outcome::MaskedSemantic.is_masked());
        assert!(!Outcome::Sdc.is_masked());
        assert!(Outcome::Hang.is_due());
        assert!(!Outcome::Sdc.is_due());
    }

    #[test]
    fn empty_counts_have_zero_rate() {
        let c = OutcomeCounts::default();
        assert_eq!(c.sdc_rate(), 0.0);
        assert_eq!(c.sdc_ci95(), 0.0);
    }
}
