//! Fault-injection outcome taxonomy (§2.3).

/// The outcome of a single fault-injection trial.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// Output bit-identical to the fault-free reference.
    MaskedIdentical,
    /// Output differs but is semantically correct (contains the reference
    /// answer — "The number of people is 5" vs "There are 5 people").
    MaskedSemantic,
    /// Silent data corruption: the answer is wrong.
    Sdc,
}

impl Outcome {
    /// Is this outcome masked (either kind)?
    pub const fn is_masked(self) -> bool {
        matches!(self, Outcome::MaskedIdentical | Outcome::MaskedSemantic)
    }
}

/// Counters over trial outcomes, mergeable for parallel reduction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OutcomeCounts {
    /// Bit-identical outputs.
    pub masked_identical: u64,
    /// Semantically-equivalent outputs.
    pub masked_semantic: u64,
    /// Silent data corruptions.
    pub sdc: u64,
}

impl OutcomeCounts {
    /// Record one outcome.
    pub fn record(&mut self, o: Outcome) {
        match o {
            Outcome::MaskedIdentical => self.masked_identical += 1,
            Outcome::MaskedSemantic => self.masked_semantic += 1,
            Outcome::Sdc => self.sdc += 1,
        }
    }

    /// Merge another counter set (parallel reduction).
    pub fn merge(&mut self, other: &OutcomeCounts) {
        self.masked_identical += other.masked_identical;
        self.masked_semantic += other.masked_semantic;
        self.sdc += other.sdc;
    }

    /// Total trials recorded.
    pub fn total(&self) -> u64 {
        self.masked_identical + self.masked_semantic + self.sdc
    }

    /// SDC rate in [0, 1] (0 for no trials).
    pub fn sdc_rate(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.sdc as f64 / t as f64
        }
    }

    /// 95% confidence half-width of the SDC rate.
    pub fn sdc_ci95(&self) -> f64 {
        ft2_numeric::proportion_ci95(self.sdc, self.total())
    }
}

/// Decides the outcome of a trial by comparing generated token streams.
pub trait OutcomeJudge: Sync {
    /// Classify `faulty` against the fault-free `reference` generation.
    fn classify(&self, reference: &[u32], faulty: &[u32]) -> Outcome;
}

/// The strictest judge: any token difference is an SDC. Useful as a lower
/// bound and for tests; real tasks use the answer-span judge in `ft2-tasks`.
pub struct ExactJudge;

impl OutcomeJudge for ExactJudge {
    fn classify(&self, reference: &[u32], faulty: &[u32]) -> Outcome {
        if reference == faulty {
            Outcome::MaskedIdentical
        } else {
            Outcome::Sdc
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_record_and_rate() {
        let mut c = OutcomeCounts::default();
        c.record(Outcome::MaskedIdentical);
        c.record(Outcome::MaskedIdentical);
        c.record(Outcome::MaskedSemantic);
        c.record(Outcome::Sdc);
        assert_eq!(c.total(), 4);
        assert!((c.sdc_rate() - 0.25).abs() < 1e-12);
        assert!(c.sdc_ci95() > 0.0);
    }

    #[test]
    fn merge_sums_fields() {
        let mut a = OutcomeCounts {
            masked_identical: 1,
            masked_semantic: 2,
            sdc: 3,
        };
        let b = OutcomeCounts {
            masked_identical: 10,
            masked_semantic: 20,
            sdc: 30,
        };
        a.merge(&b);
        assert_eq!(a.masked_identical, 11);
        assert_eq!(a.masked_semantic, 22);
        assert_eq!(a.sdc, 33);
    }

    #[test]
    fn exact_judge() {
        let j = ExactJudge;
        assert_eq!(j.classify(&[1, 2, 3], &[1, 2, 3]), Outcome::MaskedIdentical);
        assert_eq!(j.classify(&[1, 2, 3], &[1, 2, 4]), Outcome::Sdc);
        assert!(Outcome::MaskedSemantic.is_masked());
        assert!(!Outcome::Sdc.is_masked());
    }

    #[test]
    fn empty_counts_have_zero_rate() {
        let c = OutcomeCounts::default();
        assert_eq!(c.sdc_rate(), 0.0);
        assert_eq!(c.sdc_ci95(), 0.0);
    }
}
