//! Shard-scoped fault modes and the shard fault injector.
//!
//! The sharded executor ([`ft2_model::ShardedModel`]) makes each shard a
//! failure domain; this module supplies the faults that exercise it. A
//! [`ShardFault`] names the *shape* of the failure — mirroring how real
//! multi-GPU serving stacks see their accelerators fail:
//!
//! * [`ShardFault::TileCorrupt`] — stored-state corruption of one shard's
//!   weight slice (uncorrected ECC escape, stuck DRAM bits): the shard
//!   computes, but from poisoned weights.
//! * [`ShardFault::ActStorm`] — a computation-path upset that sends one
//!   shard's partial to extreme magnitudes (the activation-storm signature
//!   of §2 faults, here confined to one shard's GEMM).
//! * [`ShardFault::Hang`] — the shard stops responding (stuck stream /
//!   driver timeout): caught by the heartbeat monitor, not a deadline.
//! * [`ShardFault::Crash`] — the shard dies outright (XID-style fatal
//!   error): its task panics.
//!
//! Each composes with the [`FaultDuration`] taxonomy — transient faults
//! vanish on re-execution, intermittent ones recur with a period, and
//! persistent ones endure until repaired (TileCorrupt) or until the shard
//! is evicted (Hang/Crash). [`classify_sharded`] folds a
//! [`ShardedGeneration`] into the campaign [`Outcome`] taxonomy, including
//! the sharding-specific terminal state [`Outcome::Degraded`].

use crate::model::{FaultDuration, FaultTarget};
use crate::outcome::{Outcome, OutcomeJudge};
use ft2_model::shard::{
    PartialMut, ShardIncidentKind, ShardPartialCtx, ShardTap, ShardWeights, TaskDirective,
};
use ft2_model::ShardedGeneration;

/// Magnitude multiplier for injected shard anomalies: far above the
/// executor's anomaly threshold so detection is deterministic.
const STORM_SCALE: f32 = 1.0e9;

/// Elements corrupted by one [`ShardFault::TileCorrupt`] strike (one
/// integrity tile's worth).
const CORRUPT_ELEMS: usize = 256;

/// The shard-scoped fault modes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ShardFault {
    /// Corrupt a tile of the shard's weight slice (stored state).
    TileCorrupt,
    /// Scale the shard's partial GEMM output to extreme magnitudes
    /// (computation path).
    ActStorm,
    /// The shard stops beating and must be cancelled by the heartbeat
    /// monitor.
    Hang,
    /// The shard's task panics.
    Crash,
}

impl ShardFault {
    /// All shard fault modes, in reporting order.
    pub const ALL: [ShardFault; 4] = [
        ShardFault::TileCorrupt,
        ShardFault::ActStorm,
        ShardFault::Hang,
        ShardFault::Crash,
    ];

    /// Display name used in reports and the harness sweep.
    pub const fn name(self) -> &'static str {
        match self {
            ShardFault::TileCorrupt => "tile-corrupt",
            ShardFault::ActStorm => "act-storm",
            ShardFault::Hang => "hang",
            ShardFault::Crash => "crash",
        }
    }

    /// Parse a CLI name.
    pub fn parse(s: &str) -> Option<ShardFault> {
        match s.to_ascii_lowercase().as_str() {
            "tile-corrupt" | "tile" => Some(ShardFault::TileCorrupt),
            "act-storm" | "storm" => Some(ShardFault::ActStorm),
            "hang" => Some(ShardFault::Hang),
            "crash" => Some(ShardFault::Crash),
            _ => None,
        }
    }

    /// The stored-tensor class this fault strikes, when it strikes one
    /// (hangs and crashes are execution failures, not state corruption).
    pub fn target(self) -> Option<FaultTarget> {
        match self {
            ShardFault::TileCorrupt => Some(FaultTarget::Weight),
            ShardFault::ActStorm => Some(FaultTarget::Activation),
            ShardFault::Hang | ShardFault::Crash => None,
        }
    }
}

/// One planned shard fault: what strikes, where, when, and for how long.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardFaultSpec {
    /// Shard index (under the initial partition) the fault strikes.
    pub shard: usize,
    /// Fault mode.
    pub fault: ShardFault,
    /// Generation step of the strike (0 = prefill).
    pub step: usize,
    /// Decoder block the fault is scoped to (Hang/Crash trigger on this
    /// block's dispatches; TileCorrupt/ActStorm corrupt this block's
    /// slices/partials).
    pub block: usize,
    /// Duration taxonomy: transient strikes once, intermittent recurs,
    /// persistent endures until repair or eviction.
    pub duration: FaultDuration,
}

/// The shard fault injector: a [`ShardTap`] that realises one
/// [`ShardFaultSpec`] against a sharded generation. After a degrade
/// re-partition the injector goes inert — the faulty device left the
/// replica, and shard indices have been reassigned to the survivors.
pub struct ShardFaultInjector {
    spec: ShardFaultSpec,
    /// Set once the faulty shard has been evicted (or the partition no
    /// longer contains the target shard).
    inert: bool,
    /// Transient bookkeeping: the strike already happened.
    fired: bool,
    /// Step currently being corrupted by ActStorm (first partial only).
    storm_step: Option<usize>,
    /// Backup of the weight slice TileCorrupt scribbled over, for
    /// transient restore: (element offset, clean values).
    tile_backup: Option<(usize, Vec<f32>)>,
    strikes: u32,
}

impl ShardFaultInjector {
    /// Injector for one spec.
    pub fn new(spec: ShardFaultSpec) -> ShardFaultInjector {
        ShardFaultInjector {
            spec,
            inert: false,
            fired: false,
            storm_step: None,
            tile_backup: None,
            strikes: 0,
        }
    }

    /// Times the fault actually struck (a spec aimed past the generation
    /// end never fires).
    pub fn strikes(&self) -> u32 {
        self.strikes
    }

    fn active(&self, step: usize) -> bool {
        !self.inert && self.spec.duration.active_at(self.spec.step, step)
    }

    /// The weight matrix TileCorrupt scribbles over: the target block's
    /// first present linear on the target shard.
    fn corrupt_tile(&mut self, shards: &mut [ShardWeights]) {
        let Some(sw) = shards.get_mut(self.spec.shard) else {
            self.inert = true;
            return;
        };
        let Some(bw) = sw.blocks.get_mut(self.spec.block) else {
            self.inert = true;
            return;
        };
        let lin = &mut bw.k_proj;
        let data = lin.weight.as_mut_slice();
        if data.is_empty() {
            // An empty head span leaves nothing to corrupt.
            self.inert = true;
            return;
        }
        // ft2: nan-ok (usize tile sizing, no floats involved)
        let len = CORRUPT_ELEMS.min(data.len());
        if self.tile_backup.is_none() {
            self.tile_backup = Some((0, data[..len].to_vec()));
        }
        for v in &mut data[..len] {
            *v = STORM_SCALE;
        }
        self.strikes += 1;
    }

    fn restore_tile(&mut self, shards: &mut [ShardWeights]) {
        let Some((off, clean)) = self.tile_backup.take() else {
            return;
        };
        if let Some(sw) = shards.get_mut(self.spec.shard) {
            if let Some(bw) = sw.blocks.get_mut(self.spec.block) {
                let data = bw.k_proj.weight.as_mut_slice();
                if data.len() >= off + clean.len() {
                    data[off..off + clean.len()].copy_from_slice(&clean);
                }
            }
        }
    }
}

impl ShardTap for ShardFaultInjector {
    fn on_step_start(
        &mut self,
        step: usize,
        shards: &mut [ShardWeights],
    ) -> ft2_model::shard::ShardStateReport {
        if self.spec.fault == ShardFault::TileCorrupt {
            if self.active(step) {
                self.corrupt_tile(shards);
            } else if self.tile_backup.is_some() {
                // A transient/intermittent corruption lapsed: the stuck
                // pattern cleared, restore the clean bits.
                self.restore_tile(shards);
            }
        }
        ft2_model::shard::ShardStateReport::default()
    }

    fn directive(
        &mut self,
        step: usize,
        block: usize,
        _layer: ft2_model::LayerKind,
        shard: usize,
    ) -> TaskDirective {
        if shard != self.spec.shard || block != self.spec.block || !self.active(step) {
            return TaskDirective::Proceed;
        }
        let d = match self.spec.fault {
            ShardFault::Hang => TaskDirective::Hang,
            ShardFault::Crash => TaskDirective::Crash,
            _ => return TaskDirective::Proceed,
        };
        if self.spec.duration == FaultDuration::Transient {
            if self.fired {
                return TaskDirective::Proceed;
            }
            self.fired = true;
        }
        self.strikes += 1;
        d
    }

    fn on_partial(&mut self, ctx: &ShardPartialCtx, data: PartialMut<'_>) {
        if self.spec.fault != ShardFault::ActStorm
            || ctx.shard != self.spec.shard
            || ctx.block != self.spec.block
            || !self.active(ctx.step)
        {
            return;
        }
        match self.spec.duration {
            // Transient: one upset, gone on re-execution.
            FaultDuration::Transient => {
                if self.fired {
                    return;
                }
                self.fired = true;
            }
            // Intermittent: the first partial of each active step.
            FaultDuration::Intermittent { .. } => {
                if self.storm_step == Some(ctx.step) {
                    return;
                }
                self.storm_step = Some(ctx.step);
            }
            // Persistent: every partial this shard+block produces, so
            // re-execution and repair cannot clear it.
            FaultDuration::Persistent => {}
        }
        self.strikes += 1;
        match data {
            PartialMut::F32(m) => {
                for v in m.as_mut_slice() {
                    *v *= STORM_SCALE;
                }
            }
            PartialMut::F64(p) => {
                for v in p.iter_mut() {
                    *v *= f64::from(STORM_SCALE);
                }
            }
        }
    }

    fn on_repartition(&mut self, _shards: &[ShardWeights]) {
        // The faulty device left the replica; survivors got fresh slices
        // and new shard indices, so the spec no longer addresses anything.
        self.inert = true;
        self.tile_backup = None;
    }
}

/// Fold a sharded generation into the campaign outcome taxonomy.
///
/// Precedence: a terminal shard failure is a DUE ([`Outcome::Hang`] for
/// heartbeat-cancelled shards, [`Outcome::Crash`] otherwise — both naming
/// the shard); a completed generation that lost shards is
/// [`Outcome::Degraded`] (available, never claimed masked); otherwise the
/// token stream is judged, and a masked verdict earned through the repair
/// rung reports [`Outcome::Repaired`], one earned through shard
/// re-execution [`Outcome::Recovered`].
pub fn classify_sharded(
    reference: &[u32],
    gen: &ShardedGeneration,
    judge: &dyn OutcomeJudge,
) -> Outcome {
    if let Some(f) = gen.failed {
        return match f.kind {
            ShardIncidentKind::Hang => Outcome::Hang,
            ShardIncidentKind::Crash => Outcome::Crash {
                site: format!("shard{}", f.shard),
                message: format!("shard {} crashed at step {}", f.shard, f.step),
            },
            ShardIncidentKind::Anomaly => Outcome::Crash {
                site: format!("shard{}", f.shard),
                message: format!(
                    "shard {} anomaly unrecovered at step {}",
                    f.shard, f.step
                ),
            },
        };
    }
    if gen.shards_lost > 0 {
        return Outcome::Degraded {
            shards_lost: gen.shards_lost,
        };
    }
    let verdict = judge.classify(reference, &gen.tokens);
    if verdict.is_masked() && gen.repair_rungs > 0 {
        return Outcome::Repaired {
            repairs: gen.tiles_repaired.max(u64::from(gen.repair_rungs)),
        };
    }
    if verdict.is_masked() && gen.shard_retries > 0 {
        return Outcome::Recovered {
            retries: gen.shard_retries,
        };
    }
    verdict
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::ExactJudge;
    use ft2_model::{Model, ModelConfig, RecoveryPolicy, ShardTapList, ShardedModel};
    use ft2_parallel::WorkStealingPool;
    use std::time::Duration;

    const HEARTBEAT: Duration = Duration::from_millis(15);

    fn run(
        model: &Model,
        n: usize,
        spec: Option<ShardFaultSpec>,
        policy: RecoveryPolicy,
    ) -> ShardedGeneration {
        let pool = WorkStealingPool::new(3);
        let mut injector = spec.map(ShardFaultInjector::new);
        let mut taps = ShardTapList::new();
        if let Some(inj) = injector.as_mut() {
            taps.push(inj);
        }
        ShardedModel::new(model, n).generate_with(
            &pool,
            &[3, 14, 15, 9, 2],
            8,
            &mut taps,
            policy,
            HEARTBEAT,
        )
    }

    #[test]
    fn names_parse_roundtrip_and_targets() {
        for f in ShardFault::ALL {
            assert_eq!(ShardFault::parse(f.name()), Some(f));
        }
        assert_eq!(ShardFault::TileCorrupt.target(), Some(FaultTarget::Weight));
        assert_eq!(ShardFault::ActStorm.target(), Some(FaultTarget::Activation));
        assert_eq!(ShardFault::Crash.target(), None);
        assert_eq!(ShardFault::parse("nonsense"), None);
    }

    #[test]
    fn transient_act_storm_recovers_via_reexecution() {
        let model = Model::new(ModelConfig::tiny_opt());
        let clean = run(&model, 2, None, RecoveryPolicy::disabled());
        let spec = ShardFaultSpec {
            shard: 1,
            fault: ShardFault::ActStorm,
            step: 2,
            block: 0,
            duration: FaultDuration::Transient,
        };
        let out = run(&model, 2, Some(spec), RecoveryPolicy::retries(1));
        assert!(out.completed());
        assert_eq!(out.tokens, clean.tokens);
        assert!(out.storms >= 1);
        let outcome = classify_sharded(&clean.tokens, &out, &ExactJudge);
        assert_eq!(outcome, Outcome::Recovered { retries: out.shard_retries });
    }

    #[test]
    fn persistent_crash_with_degrade_classifies_degraded() {
        let model = Model::new(ModelConfig::tiny_opt());
        let clean = run(&model, 3, None, RecoveryPolicy::disabled());
        let spec = ShardFaultSpec {
            shard: 2,
            fault: ShardFault::Crash,
            step: 1,
            block: 0,
            duration: FaultDuration::Persistent,
        };
        let out = run(
            &model,
            3,
            Some(spec),
            RecoveryPolicy::retries(1).with_shard_degrade(),
        );
        assert!(out.completed(), "degrade must keep serving");
        assert_eq!(out.tokens.len(), clean.tokens.len());
        assert_eq!(out.shards_lost, 1);
        let outcome = classify_sharded(&clean.tokens, &out, &ExactJudge);
        assert_eq!(outcome, Outcome::Degraded { shards_lost: 1 });
    }

    #[test]
    fn persistent_crash_without_degrade_is_a_shard_due() {
        let model = Model::new(ModelConfig::tiny_opt());
        let clean = run(&model, 2, None, RecoveryPolicy::disabled());
        let spec = ShardFaultSpec {
            shard: 0,
            fault: ShardFault::Crash,
            step: 3,
            block: 0,
            duration: FaultDuration::Persistent,
        };
        let out = run(&model, 2, Some(spec), RecoveryPolicy::retries(1));
        assert!(out.failed.is_some());
        match classify_sharded(&clean.tokens, &out, &ExactJudge) {
            Outcome::Crash { site, .. } => assert_eq!(site, "shard0"),
            other => panic!("expected shard crash DUE, got {other:?}"),
        }
    }

    #[test]
    fn hang_classifies_as_hang_outcome() {
        let model = Model::new(ModelConfig::tiny_opt());
        let clean = run(&model, 2, None, RecoveryPolicy::disabled());
        let spec = ShardFaultSpec {
            shard: 1,
            fault: ShardFault::Hang,
            step: 2,
            block: 0,
            duration: FaultDuration::Persistent,
        };
        let out = run(&model, 2, Some(spec), RecoveryPolicy::retries(1));
        assert!(out.failed.is_some());
        assert_eq!(
            classify_sharded(&clean.tokens, &out, &ExactJudge),
            Outcome::Hang
        );
    }

    #[test]
    fn tile_corrupt_without_scrubber_cannot_repair() {
        // Persistent weight corruption with no repair tap: every rung
        // re-reads the poisoned slice; with degrade the shard is evicted.
        let model = Model::new(ModelConfig::tiny_opt());
        let clean = run(&model, 2, None, RecoveryPolicy::disabled());
        let spec = ShardFaultSpec {
            shard: 0,
            fault: ShardFault::TileCorrupt,
            step: 1,
            block: 0,
            duration: FaultDuration::Persistent,
        };
        let out = run(
            &model,
            2,
            Some(spec),
            RecoveryPolicy::retries(1)
                .with_repair()
                .with_shard_degrade(),
        );
        assert!(out.completed());
        assert_eq!(out.shards_lost, 1, "eviction is the only rung that works");
        assert_eq!(
            classify_sharded(&clean.tokens, &out, &ExactJudge),
            Outcome::Degraded { shards_lost: 1 }
        );
    }
}
