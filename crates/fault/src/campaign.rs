//! The statistical fault-injection campaign engine.
//!
//! A campaign evaluates one `(model, input set, fault model, protection)`
//! configuration by running `inputs × trials_per_input` independent
//! generations, each with exactly one injected fault at a uniformly sampled
//! site, and classifying every output against the input's fault-free
//! reference generation (§2.3).
//!
//! Trials are distributed over a [`WorkStealingPool`]; each trial derives
//! its RNG stream from `(campaign seed, input id, trial id)`, so results
//! are bit-reproducible for any thread count.

use crate::inject::FaultInjector;
use crate::model::FaultModel;
use crate::outcome::{Outcome, OutcomeCounts, OutcomeJudge};
use crate::site::{FaultSite, SiteSampler, StepFilter, StepWeighting};
use ft2_model::{LayerKind, LayerTap, Model, TapList};
use ft2_numeric::Xoshiro256StarStar;
use ft2_parallel::WorkStealingPool;
use std::collections::BTreeMap;

/// Produces fresh protection taps for each inference trial.
///
/// FT2's online protection is stateful per inference (bounds are profiled
/// during the trial's own first-token generation), so each trial needs its
/// own tap instances. Implementations live in `ft2-core`.
pub trait ProtectionFactory: Sync {
    /// Create the protection taps for one trial, to run *after* the fault
    /// injector in hook order.
    fn make(&self) -> Vec<Box<dyn LayerTap>>;

    /// Scheme name for reports.
    fn scheme_name(&self) -> &str {
        "No Protection"
    }
}

/// The no-protection baseline.
pub struct Unprotected;

impl ProtectionFactory for Unprotected {
    fn make(&self) -> Vec<Box<dyn LayerTap>> {
        Vec::new()
    }
}

/// Campaign parameters.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Master seed; every trial stream derives from it.
    pub seed: u64,
    /// Fault-injection trials per input.
    pub trials_per_input: usize,
    /// Tokens to generate per trial (60 for QA, 180 for math in the paper;
    /// scaled down with the models here).
    pub gen_tokens: usize,
    /// Which bits faults flip.
    pub fault_model: FaultModel,
    /// Which generation steps faults may strike.
    pub step_filter: StepFilter,
    /// How steps are weighted when drawing the fault step.
    pub step_weighting: StepWeighting,
    /// Restrict faults to these layer kinds (None = all block linears).
    pub layer_filter: Option<Vec<LayerKind>>,
}

impl CampaignConfig {
    /// A small default campaign, mainly for tests and examples.
    pub fn quick(fault_model: FaultModel) -> CampaignConfig {
        CampaignConfig {
            seed: 0xF72_CAFE,
            trials_per_input: 50,
            gen_tokens: 16,
            fault_model,
            step_filter: StepFilter::AllSteps,
            step_weighting: StepWeighting::default(),
            layer_filter: None,
        }
    }
}

/// Aggregated campaign output.
#[derive(Clone, Debug, Default)]
pub struct CampaignResult {
    /// Overall outcome counts.
    pub counts: OutcomeCounts,
    /// Breakdown by targeted layer kind (Fig. 6-style analyses).
    pub per_layer: BTreeMap<LayerKind, OutcomeCounts>,
    /// Breakdown by bit class ("sign" / "exponent" / "mantissa").
    pub per_bit_class: BTreeMap<&'static str, OutcomeCounts>,
    /// Outcomes of faults that struck the prefill step.
    pub first_token_faults: OutcomeCounts,
}

impl CampaignResult {
    /// Overall SDC rate.
    pub fn sdc_rate(&self) -> f64 {
        self.counts.sdc_rate()
    }

    /// 95% CI half-width of the SDC rate.
    pub fn sdc_ci95(&self) -> f64 {
        self.counts.sdc_ci95()
    }
}

/// One trial's record (kept compact; campaigns run hundreds of thousands).
#[derive(Clone, Debug)]
struct TrialRecord {
    site: FaultSite,
    outcome: Outcome,
    bit_class: &'static str,
}

/// A bound campaign: model + inputs + judge.
pub struct Campaign<'a> {
    model: &'a Model,
    inputs: &'a [Vec<u32>],
    judge: &'a dyn OutcomeJudge,
    config: CampaignConfig,
    references: Vec<Vec<u32>>,
}

impl<'a> Campaign<'a> {
    /// Prepare a campaign: computes the fault-free reference generation for
    /// every input (unprotected — the ground truth the inputs were selected
    /// to answer correctly).
    pub fn new(
        model: &'a Model,
        inputs: &'a [Vec<u32>],
        judge: &'a dyn OutcomeJudge,
        config: CampaignConfig,
        pool: &WorkStealingPool,
    ) -> Campaign<'a> {
        assert!(!inputs.is_empty(), "campaign needs at least one input");
        let gen_tokens = config.gen_tokens;
        let references = pool.map(inputs, 1, |_, prompt| {
            let mut taps = TapList::new();
            model.generate(prompt, gen_tokens, &mut taps).tokens
        });
        Campaign {
            model,
            inputs,
            judge,
            config,
            references,
        }
    }

    /// The fault-free reference generations.
    pub fn references(&self) -> &[Vec<u32>] {
        &self.references
    }

    /// Run the full campaign under a protection scheme.
    pub fn run(&self, protection: &dyn ProtectionFactory, pool: &WorkStealingPool) -> CampaignResult {
        let n_inputs = self.inputs.len();
        let trials = self.config.trials_per_input;
        let total = n_inputs * trials;
        let format = self.model.config().dtype.format();

        let records: Vec<TrialRecord> = pool.map(
            &(0..total).collect::<Vec<usize>>(),
            8,
            |_, &task| {
                let input_id = task / trials;
                let trial_id = task % trials;
                let prompt = &self.inputs[input_id];
                let mut rng = Xoshiro256StarStar::for_stream(
                    self.config.seed,
                    &[input_id as u64, trial_id as u64],
                );
                let mut sampler =
                    SiteSampler::new(self.model.config(), prompt.len(), self.config.gen_tokens)
                        .with_step_filter(self.config.step_filter)
                        .with_step_weighting(self.config.step_weighting);
                if let Some(kinds) = &self.config.layer_filter {
                    sampler = sampler.with_layer_filter(kinds.clone());
                }
                let site = sampler.sample(&mut rng, self.config.fault_model, format);
                let bit_class = ft2_numeric::BitLocation {
                    format,
                    bit: site.bits[0],
                }
                .class();

                let mut injector = FaultInjector::new(site.clone());
                let mut protection_taps = protection.make();
                let mut taps = TapList::new();
                taps.push(&mut injector);
                for t in protection_taps.iter_mut() {
                    taps.push(t.as_mut());
                }
                let out = self
                    .model
                    .generate(prompt, self.config.gen_tokens, &mut taps);
                drop(taps);
                debug_assert!(injector.fired(), "fault site never reached");
                let outcome = self.judge.classify(&self.references[input_id], &out.tokens);
                TrialRecord {
                    site,
                    outcome,
                    bit_class,
                }
            },
        );

        let mut result = CampaignResult::default();
        for rec in records {
            result.counts.record(rec.outcome);
            result
                .per_layer
                .entry(rec.site.point.layer)
                .or_default()
                .record(rec.outcome);
            result
                .per_bit_class
                .entry(rec.bit_class)
                .or_default()
                .record(rec.outcome);
            if rec.site.step == 0 {
                result.first_token_faults.record(rec.outcome);
            }
        }
        result
    }

    /// Run every input once with protection but **no fault**, returning the
    /// outcome of each run against the clean reference. This is the Fig. 3
    /// experiment: protection with ill-fitting bounds can corrupt fault-free
    /// inference by clipping benign values.
    pub fn run_fault_free(
        &self,
        protection: &dyn ProtectionFactory,
        pool: &WorkStealingPool,
    ) -> Vec<Outcome> {
        let gen_tokens = self.config.gen_tokens;
        pool.map(self.inputs, 1, |i, prompt| {
            let mut protection_taps = protection.make();
            let mut taps = TapList::new();
            for t in protection_taps.iter_mut() {
                taps.push(t.as_mut());
            }
            let out = self.model.generate(prompt, gen_tokens, &mut taps);
            drop(taps);
            self.judge.classify(&self.references[i], &out.tokens)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::ExactJudge;
    use ft2_model::ModelConfig;

    fn tiny_campaign_parts() -> (Model, Vec<Vec<u32>>) {
        let model = Model::new(ModelConfig::tiny_opt());
        let inputs: Vec<Vec<u32>> = vec![
            vec![3, 14, 15, 92, 6],
            vec![27, 18, 28, 18, 2, 8],
            vec![1, 41, 42, 13, 56],
        ];
        (model, inputs)
    }

    #[test]
    fn campaign_runs_and_counts_all_trials() {
        let (model, inputs) = tiny_campaign_parts();
        let pool = WorkStealingPool::new(4);
        let judge = ExactJudge;
        let mut cfg = CampaignConfig::quick(FaultModel::SingleBit);
        cfg.trials_per_input = 20;
        cfg.gen_tokens = 8;
        let campaign = Campaign::new(&model, &inputs, &judge, cfg, &pool);
        assert_eq!(campaign.references().len(), 3);
        let result = campaign.run(&Unprotected, &pool);
        assert_eq!(result.counts.total(), 60);
        let layer_total: u64 = result.per_layer.values().map(|c| c.total()).sum();
        assert_eq!(layer_total, 60);
        let bit_total: u64 = result.per_bit_class.values().map(|c| c.total()).sum();
        assert_eq!(bit_total, 60);
    }

    #[test]
    fn campaign_is_deterministic_across_thread_counts() {
        let (model, inputs) = tiny_campaign_parts();
        let judge = ExactJudge;
        let mut cfg = CampaignConfig::quick(FaultModel::ExponentBit);
        cfg.trials_per_input = 15;
        cfg.gen_tokens = 6;

        let pool1 = WorkStealingPool::new(1);
        let c1 = Campaign::new(&model, &inputs, &judge, cfg.clone(), &pool1);
        let r1 = c1.run(&Unprotected, &pool1);

        let pool4 = WorkStealingPool::new(4);
        let c4 = Campaign::new(&model, &inputs, &judge, cfg, &pool4);
        let r4 = c4.run(&Unprotected, &pool4);

        assert_eq!(r1.counts, r4.counts);
        assert_eq!(r1.per_layer, r4.per_layer);
    }

    #[test]
    fn exponent_faults_cause_more_sdc_than_single_bit() {
        let (model, inputs) = tiny_campaign_parts();
        let pool = WorkStealingPool::new(4);
        let judge = ExactJudge;
        let mut cfg = CampaignConfig::quick(FaultModel::SingleBit);
        cfg.trials_per_input = 120;
        cfg.gen_tokens = 8;
        let c = Campaign::new(&model, &inputs, &judge, cfg.clone(), &pool);
        let single = c.run(&Unprotected, &pool);

        let mut cfg_exp = cfg;
        cfg_exp.fault_model = FaultModel::ExponentBit;
        let c_exp = Campaign::new(&model, &inputs, &judge, cfg_exp, &pool);
        let exp = c_exp.run(&Unprotected, &pool);

        assert!(
            exp.sdc_rate() >= single.sdc_rate(),
            "EXP ({}) must be at least as severe as 1-bit ({})",
            exp.sdc_rate(),
            single.sdc_rate()
        );
    }

    #[test]
    fn fault_free_run_without_protection_is_identical() {
        let (model, inputs) = tiny_campaign_parts();
        let pool = WorkStealingPool::new(2);
        let judge = ExactJudge;
        let campaign = Campaign::new(
            &model,
            &inputs,
            &judge,
            CampaignConfig::quick(FaultModel::SingleBit),
            &pool,
        );
        let outcomes = campaign.run_fault_free(&Unprotected, &pool);
        assert!(outcomes.iter().all(|o| *o == Outcome::MaskedIdentical));
    }

    #[test]
    fn first_token_filter_only_hits_step0() {
        let (model, inputs) = tiny_campaign_parts();
        let pool = WorkStealingPool::new(2);
        let judge = ExactJudge;
        let mut cfg = CampaignConfig::quick(FaultModel::SingleBit);
        cfg.trials_per_input = 10;
        cfg.gen_tokens = 6;
        cfg.step_filter = StepFilter::FirstTokenOnly;
        let campaign = Campaign::new(&model, &inputs, &judge, cfg, &pool);
        let result = campaign.run(&Unprotected, &pool);
        assert_eq!(result.first_token_faults.total(), result.counts.total());
    }
}
