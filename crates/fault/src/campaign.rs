//! The statistical fault-injection campaign engine.
//!
//! A campaign evaluates one `(model, input set, fault model, protection)`
//! configuration by running `inputs × trials_per_input` independent
//! generations, each with exactly one injected fault at a uniformly sampled
//! site, and classifying every output against the input's fault-free
//! reference generation (§2.3).
//!
//! Trials are distributed over a [`WorkStealingPool`]; each trial derives
//! its RNG stream from `(campaign seed, input id, trial id)`, so results
//! are bit-reproducible for any thread count.
//!
//! **Crash safety.** Every trial body runs under
//! [`ft2_parallel::catch_quiet`]: a panic inside the model, the injector, or
//! a protection tap is classified as [`Outcome::Crash`] (with the panic's
//! `file:line` and message) instead of killing the campaign, and a
//! [`WatchdogTap`] may abort runaway generations as [`Outcome::Hang`]. Both
//! are detected unrecoverable errors (DUE) in the outcome taxonomy.
//! [`Campaign::run_resumable`] additionally checkpoints the aggregate every
//! few hundred tasks so an interrupted campaign resumes bit-identically.

use crate::checkpoint::CampaignCheckpoint;
use crate::inject::{FaultInjector, StateFaultInjector};
use crate::model::{FaultDuration, FaultModel, FaultTarget};
use crate::outcome::{Outcome, OutcomeCounts, OutcomeJudge};
use crate::site::{FaultSite, SiteSampler, StepFilter, StepWeighting};
use crate::trace::{TraceEvent, TraceTap};
use crate::watchdog::{TrialAbort, WatchdogTap};
use ft2_model::{
    LayerKind, LayerTap, Model, RecoveryPolicy, StateTap, StateTapList, StepRecord, TapList,
};
use ft2_numeric::Xoshiro256StarStar;
use ft2_parallel::{catch_quiet, WorkStealingPool};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Duration;

/// Produces fresh protection taps for each inference trial.
///
/// FT2's online protection is stateful per inference (bounds are profiled
/// during the trial's own first-token generation), so each trial needs its
/// own tap instances. Implementations live in `ft2-core`.
pub trait ProtectionFactory: Sync {
    /// Create the protection taps for one trial, to run *after* the fault
    /// injector in hook order.
    fn make(&self) -> Vec<Box<dyn LayerTap>>;

    /// Create the stored-state taps (integrity scrubber / KV guard) for one
    /// trial, to run *after* the stored-state fault injector in state-pass
    /// order — a guard then observes a same-step corruption before the
    /// forward consumes it. Default: none.
    fn make_state(&self) -> Vec<Box<dyn StateTap>> {
        Vec::new()
    }

    /// Scheme name for reports.
    fn scheme_name(&self) -> &str {
        "No Protection"
    }
}

/// The no-protection baseline.
pub struct Unprotected;

impl ProtectionFactory for Unprotected {
    fn make(&self) -> Vec<Box<dyn LayerTap>> {
        Vec::new()
    }
}

/// Campaign parameters.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Master seed; every trial stream derives from it.
    pub seed: u64,
    /// Fault-injection trials per input.
    pub trials_per_input: usize,
    /// Tokens to generate per trial (60 for QA, 180 for math in the paper;
    /// scaled down with the models here).
    pub gen_tokens: usize,
    /// Which bits faults flip.
    pub fault_model: FaultModel,
    /// How long injected faults endure (transient upset, intermittent
    /// re-striker, or persistent corruption).
    pub fault_duration: FaultDuration,
    /// What faults corrupt: computed activations, stored weights, or cached
    /// K/V rows.
    pub fault_target: FaultTarget,
    /// Which generation steps faults may strike.
    pub step_filter: StepFilter,
    /// How steps are weighted when drawing the fault step.
    pub step_weighting: StepWeighting,
    /// Restrict faults to these layer kinds (None = all block linears).
    pub layer_filter: Option<Vec<LayerKind>>,
    /// Watchdog wall-clock deadline per trial, in milliseconds (None =
    /// no deadline). Wall-clock aborts are *not* bit-reproducible across
    /// machines; reproducible campaigns should use only the token budget.
    pub trial_deadline_ms: Option<u64>,
    /// Watchdog budget in generation steps per trial (None = no budget).
    /// Deterministic: a trial that reaches this step is a [`Outcome::Hang`]
    /// at every thread count and on every machine.
    pub trial_token_budget: Option<usize>,
    /// Token-rollback retry budget per decode step (0 = recovery disabled,
    /// the pre-recovery behaviour). With a budget, an anomaly-storm verdict
    /// rolls the KV cache back and re-decodes the token with escalated
    /// protection instead of accepting a likely-SDC token.
    pub recovery_retries: u32,
    /// After the rollback retry budget is exhausted, take one
    /// repair-and-retry rung: sweep every integrity tap's full repair pass
    /// (weight tiles restored from the golden copy, poisoned KV positions
    /// invalidated and rebuilt), then re-decode once more. Requires state
    /// taps to have any effect.
    pub recovery_repair: bool,
}

impl CampaignConfig {
    /// A small default campaign, mainly for tests and examples.
    pub fn quick(fault_model: FaultModel) -> CampaignConfig {
        CampaignConfig {
            seed: 0xF72_CAFE,
            trials_per_input: 50,
            gen_tokens: 16,
            fault_model,
            fault_duration: FaultDuration::Transient,
            fault_target: FaultTarget::Activation,
            step_filter: StepFilter::AllSteps,
            step_weighting: StepWeighting::default(),
            layer_filter: None,
            trial_deadline_ms: None,
            trial_token_budget: None,
            recovery_retries: 0,
            recovery_repair: false,
        }
    }
}

/// Everything one isolated trial produces: the aggregate record plus the
/// raw evidence (`ft2-repro replay` renders the latter).
struct TrialBody {
    record: TrialRecord,
    /// `(original, corrupted)` at the injection site, when reached.
    injected: Option<(f32, f32)>,
    /// The faulty generation (empty for crashed/hung trials).
    tokens: Vec<u32>,
    /// Per-step anomaly reports of the accepted execution.
    steps: Vec<StepRecord>,
}

/// A crashed trial's identity and panic details, kept for replay.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TrialFailure {
    /// Input index of the crashed trial.
    pub input: usize,
    /// Trial index within the input.
    pub trial: usize,
    /// `file:line` where the panic was raised.
    pub site: String,
    /// The panic message.
    pub message: String,
}

/// How many crashed trials a campaign records individually (counters are
/// exact regardless; this caps only the replay-pointer list).
const MAX_CRASH_RECORDS: usize = 64;

/// Aggregated campaign output.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CampaignResult {
    /// Overall outcome counts.
    pub counts: OutcomeCounts,
    /// Breakdown by targeted layer kind (Fig. 6-style analyses).
    pub per_layer: BTreeMap<LayerKind, OutcomeCounts>,
    /// Breakdown by bit class ("sign" / "exponent" / "mantissa").
    pub per_bit_class: BTreeMap<&'static str, OutcomeCounts>,
    /// Outcomes of faults that struck the prefill step.
    pub first_token_faults: OutcomeCounts,
    /// The first [`MAX_CRASH_RECORDS`] crashed trials, in task order — each
    /// is replayable via `ft2-repro replay <seed>/<input>/<trial>`.
    pub crashes: Vec<TrialFailure>,
    /// Total token rollbacks performed across all trials.
    pub rollbacks: u64,
    /// Total anomaly-storm verdicts across all trials (including storms
    /// cleared by a rollback).
    pub storms: u64,
    /// Total weight tiles re-verified by integrity scrubbing (the scrub
    /// work the campaign paid for, repairs or not).
    pub scrubbed_tiles: u64,
    /// Total weight tiles found corrupted and restored from the golden
    /// copy.
    pub weight_repairs: u64,
    /// Total KV-cache positions invalidated and rebuilt after a guard
    /// flagged them.
    pub kv_repairs: u64,
    /// Total repair-and-retry rungs taken after rollback exhaustion.
    pub repair_retries: u64,
    /// Total cross-replica failovers: in-flight requests handed off to a
    /// surviving replica after a crash, hang, or quarantine.
    pub failovers: u64,
    /// Total quarantined replicas rebuilt from the golden copy that
    /// rejoined live service.
    pub replica_rebuilds: u64,
}

impl CampaignResult {
    /// Overall SDC rate.
    pub fn sdc_rate(&self) -> f64 {
        self.counts.sdc_rate()
    }

    /// 95% CI half-width of the SDC rate.
    pub fn sdc_ci95(&self) -> f64 {
        self.counts.sdc_ci95()
    }

    /// Fold one trial record into the aggregate. Order matters only for the
    /// crash list; the counters are commutative.
    fn accumulate(&mut self, rec: &TrialRecord) {
        self.counts.record(&rec.outcome);
        self.per_layer
            .entry(rec.site.point.layer)
            .or_default()
            .record(&rec.outcome);
        self.per_bit_class
            .entry(rec.bit_class)
            .or_default()
            .record(&rec.outcome);
        if rec.site.step == 0 {
            self.first_token_faults.record(&rec.outcome);
        }
        if let Outcome::Crash { site, message } = &rec.outcome {
            if self.crashes.len() < MAX_CRASH_RECORDS {
                self.crashes.push(TrialFailure {
                    input: rec.input,
                    trial: rec.trial,
                    site: site.clone(),
                    message: message.clone(),
                });
            }
        }
        self.rollbacks += rec.rollbacks as u64;
        self.storms += rec.storms as u64;
        self.scrubbed_tiles += rec.scrubbed_tiles;
        self.weight_repairs += rec.weight_repairs;
        self.kv_repairs += rec.kv_repairs;
        self.repair_retries += rec.repair_retries as u64;
    }
}

/// One trial's record (kept compact; campaigns run hundreds of thousands).
#[derive(Clone, Debug)]
pub struct TrialRecord {
    /// Input index.
    pub input: usize,
    /// Trial index within the input.
    pub trial: usize,
    /// The injected fault site.
    pub site: FaultSite,
    /// The judged (or DUE) outcome.
    pub outcome: Outcome,
    /// Bit class of the flipped bit ("sign" / "exponent" / "mantissa").
    pub bit_class: &'static str,
    /// Token rollbacks performed in this trial.
    pub rollbacks: u32,
    /// Anomaly-storm verdicts observed in this trial.
    pub storms: u32,
    /// Weight tiles re-verified by scrubbing in this trial.
    pub scrubbed_tiles: u64,
    /// Weight tiles restored from the golden copy in this trial.
    pub weight_repairs: u64,
    /// KV-cache positions invalidated and rebuilt in this trial.
    pub kv_repairs: u64,
    /// Repair-and-retry rungs taken in this trial.
    pub repair_retries: u32,
}

/// Verbose observations from a traced single-trial replay.
#[derive(Clone, Debug)]
pub struct TrialTrace {
    /// `(original, corrupted)` values at the injection site, when the site
    /// was reached before the trial ended.
    pub injected: Option<(f32, f32)>,
    /// Anomalous layer outputs (NaN/Inf or new peak magnitude), in order.
    pub events: Vec<TraceEvent>,
    /// Largest finite magnitude observed anywhere in the trial.
    pub peak_abs: f32,
    /// Hook firings observed.
    pub firings: usize,
    /// The faulty generation (empty when the trial crashed or hung).
    pub tokens: Vec<u32>,
    /// The fault-free reference generation.
    pub reference: Vec<u32>,
    /// Per-step anomaly reports of the accepted execution (clamp/NaN
    /// counts, verdict, re-decode count) — why a rollback fired, or didn't.
    pub steps: Vec<StepRecord>,
}

/// Checkpoint cadence and resume behaviour for
/// [`Campaign::run_resumable`].
#[derive(Clone, Debug)]
pub struct CheckpointPolicy {
    /// Checkpoint file path (created on first write, removed on completion).
    pub path: PathBuf,
    /// Write a checkpoint after every `every` completed tasks (min 1).
    pub every: usize,
    /// Load an existing checkpoint at `path` and continue after its prefix.
    /// With `false`, any stale checkpoint is overwritten.
    pub resume: bool,
    /// Stop (checkpoint intact, `interrupted = true`) after completing this
    /// many tasks in *this* invocation. Simulates an interruption; used by
    /// the resume-determinism tests. `None` runs to completion.
    pub abort_after: Option<usize>,
}

impl CheckpointPolicy {
    /// A policy that checkpoints every `every` tasks at `path` and resumes
    /// from any compatible checkpoint found there.
    pub fn resume_at(path: impl Into<PathBuf>, every: usize) -> CheckpointPolicy {
        CheckpointPolicy {
            path: path.into(),
            every,
            resume: true,
            abort_after: None,
        }
    }
}

/// Outcome of a resumable campaign invocation.
#[derive(Clone, Debug)]
pub struct CampaignRun {
    /// Aggregate over tasks `0..completed_tasks`.
    pub result: CampaignResult,
    /// Task prefix restored from the checkpoint (0 for a fresh run).
    pub resumed_from: usize,
    /// Tasks folded into `result` so far.
    pub completed_tasks: usize,
    /// `inputs × trials_per_input`.
    pub total_tasks: usize,
    /// True when the run stopped early (`abort_after`); the checkpoint file
    /// is left in place for a later resume.
    pub interrupted: bool,
}

/// A bound campaign: model + inputs + judge.
pub struct Campaign<'a> {
    model: &'a Model,
    inputs: &'a [Vec<u32>],
    judge: &'a dyn OutcomeJudge,
    config: CampaignConfig,
    references: Vec<Vec<u32>>,
}

impl<'a> Campaign<'a> {
    /// Prepare a campaign: computes the fault-free reference generation for
    /// every input (unprotected — the ground truth the inputs were selected
    /// to answer correctly).
    pub fn new(
        model: &'a Model,
        inputs: &'a [Vec<u32>],
        judge: &'a dyn OutcomeJudge,
        config: CampaignConfig,
        pool: &WorkStealingPool,
    ) -> Campaign<'a> {
        assert!(!inputs.is_empty(), "campaign needs at least one input");
        let gen_tokens = config.gen_tokens;
        // References are fault-free by construction, so the zero-skip fast
        // kernels are valid here (bit-identical to strict on finite data).
        // Every injection trial below runs strict — the non-finite values
        // it plants must propagate with IEEE fidelity.
        let references = pool.map(inputs, 1, |_, prompt| {
            let mut taps = TapList::new();
            model
                .generate_with_policy(prompt, gen_tokens, &mut taps, ft2_model::KernelPolicy::Fast)
                .tokens
        });
        Campaign {
            model,
            inputs,
            judge,
            config,
            references,
        }
    }

    /// The fault-free reference generations.
    pub fn references(&self) -> &[Vec<u32>] {
        &self.references
    }

    /// The campaign configuration.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// Derive the fault site of trial `(input_id, trial_id)` — the same
    /// derivation every campaign run uses, so a site can be inspected (or a
    /// trial replayed) without running anything else.
    pub fn sample_site(&self, input_id: usize, trial_id: usize) -> (FaultSite, &'static str) {
        let format = self.model.config().dtype.format();
        let prompt = &self.inputs[input_id];
        let mut rng = Xoshiro256StarStar::for_stream(
            self.config.seed,
            &[input_id as u64, trial_id as u64],
        );
        let mut sampler =
            SiteSampler::new(self.model.config(), prompt.len(), self.config.gen_tokens)
                .with_step_filter(self.config.step_filter)
                .with_step_weighting(self.config.step_weighting)
                .with_duration(self.config.fault_duration)
                .with_target(self.config.fault_target);
        if let Some(kinds) = &self.config.layer_filter {
            sampler = sampler.with_layer_filter(kinds.clone());
        }
        let site = sampler.sample(&mut rng, self.config.fault_model, format);
        let bit_class = ft2_numeric::BitLocation {
            format,
            bit: site.bits[0],
        }
        .class();
        (site, bit_class)
    }

    /// Run one trial in isolation, classifying panics as
    /// [`Outcome::Crash`] and watchdog aborts as [`Outcome::Hang`].
    pub fn trial_record(
        &self,
        protection: &dyn ProtectionFactory,
        input_id: usize,
        trial_id: usize,
    ) -> TrialRecord {
        self.run_trial(protection, input_id, trial_id, None).record
    }

    /// Run one trial with verbose tracing (for `ft2-repro replay`). The
    /// trace survives a crashing or hanging trial: events up to the abort
    /// are retained.
    pub fn trial_record_traced(
        &self,
        protection: &dyn ProtectionFactory,
        input_id: usize,
        trial_id: usize,
    ) -> (TrialRecord, TrialTrace) {
        let mut tracer = TraceTap::new();
        let body = self.run_trial(protection, input_id, trial_id, Some(&mut tracer));
        let trace = TrialTrace {
            injected: body.injected,
            events: tracer.events,
            peak_abs: tracer.peak_abs,
            firings: tracer.firings,
            tokens: body.tokens,
            reference: self.references[input_id].clone(),
            steps: body.steps,
        };
        (body.record, trace)
    }

    /// The isolated trial body shared by all run modes. Layer-tap order:
    /// watchdog (aborts fire even when a later tap stalls) → injector →
    /// protection → tracer (observes what protection let through).
    /// State-tap order: stored-state injector → integrity taps (a guard
    /// sees a same-step corruption in the pass that would consume it).
    fn run_trial(
        &self,
        protection: &dyn ProtectionFactory,
        input_id: usize,
        trial_id: usize,
        tracer: Option<&mut TraceTap>,
    ) -> TrialBody {
        let prompt = &self.inputs[input_id];
        let (site, bit_class) = self.sample_site(input_id, trial_id);

        let activation_fault = site.target == FaultTarget::Activation;
        let mut injector = activation_fault.then(|| FaultInjector::new(site.clone()));
        let mut state_injector =
            (!activation_fault).then(|| StateFaultInjector::new(site.clone()));
        let mut watchdog = WatchdogTap::new(
            self.config.trial_deadline_ms.map(Duration::from_millis),
            self.config.trial_token_budget,
        );
        let mut protection_taps = protection.make();
        let mut state_taps = protection.make_state();
        let mut policy = RecoveryPolicy::retries(self.config.recovery_retries);
        if self.config.recovery_repair {
            policy = policy.with_repair();
        }
        let generated = catch_quiet(|| {
            let mut taps = TapList::new();
            if watchdog.is_armed() {
                taps.push(&mut watchdog);
            }
            if let Some(inj) = injector.as_mut() {
                taps.push(inj);
            }
            for t in protection_taps.iter_mut() {
                taps.push(t.as_mut());
            }
            if let Some(tr) = tracer {
                taps.push(tr);
            }
            let mut state = StateTapList::new();
            if let Some(inj) = state_injector.as_mut() {
                state.push(inj);
            }
            for t in state_taps.iter_mut() {
                state.push(t.as_mut());
            }
            self.model.generate_resilient(
                prompt,
                self.config.gen_tokens,
                &mut taps,
                &mut state,
                policy,
            )
        });

        let mut scrubbed_tiles = 0;
        let mut weight_repairs = 0;
        let mut kv_repairs = 0;
        let mut repair_retries = 0;
        let (outcome, tokens, steps, rollbacks, storms) = match generated {
            Ok(out) => {
                debug_assert!(
                    injector.as_ref().map(FaultInjector::fired).unwrap_or(true)
                        && state_injector
                            .as_ref()
                            .map(StateFaultInjector::fired)
                            .unwrap_or(true),
                    "fault site never reached"
                );
                scrubbed_tiles = out.scrubbed_tiles;
                weight_repairs = out.weight_repairs;
                kv_repairs = out.kv_repairs;
                repair_retries = out.repair_retries;
                // A transient fault strikes once, so a rolled-back token is
                // re-decoded *without* it; persistent faults re-corrupt (or
                // stay resident in) re-decodes, and only a stored-state
                // repair removes them.
                let outcome = if out.recovery_failed {
                    Outcome::RecoveryFailed {
                        retries: out.rollbacks,
                    }
                } else {
                    let judged = self.judge.classify(&self.references[input_id], &out.tokens);
                    if judged.is_masked() && out.repairs() > 0 {
                        Outcome::Repaired {
                            repairs: out.repairs(),
                        }
                    } else if out.rollbacks > 0 && judged.is_masked() {
                        Outcome::Recovered {
                            retries: out.rollbacks,
                        }
                    } else {
                        judged
                    }
                };
                (outcome, out.tokens, out.steps, out.rollbacks, out.storms)
            }
            Err(caught) if caught.payload.downcast_ref::<TrialAbort>().is_some() => {
                (Outcome::Hang, Vec::new(), Vec::new(), 0, 0)
            }
            Err(caught) => (
                Outcome::Crash {
                    site: caught.site,
                    message: caught.message,
                },
                Vec::new(),
                Vec::new(),
                0,
                0,
            ),
        };
        let injected = match (&injector, &state_injector) {
            (Some(inj), _) => inj.original.zip(inj.corrupted),
            (_, Some(inj)) => inj.original.zip(inj.corrupted),
            _ => None,
        };
        TrialBody {
            record: TrialRecord {
                input: input_id,
                trial: trial_id,
                site,
                outcome,
                bit_class,
                rollbacks,
                storms,
                scrubbed_tiles,
                weight_repairs,
                kv_repairs,
                repair_retries,
            },
            injected,
            tokens,
            steps,
        }
    }

    /// Run the full campaign under a protection scheme.
    pub fn run(&self, protection: &dyn ProtectionFactory, pool: &WorkStealingPool) -> CampaignResult {
        let trials = self.config.trials_per_input;
        let total = self.inputs.len() * trials;
        let records: Vec<TrialRecord> = pool.map(
            &(0..total).collect::<Vec<usize>>(),
            8,
            |_, &task| self.trial_record(protection, task / trials, task % trials),
        );
        let mut result = CampaignResult::default();
        for rec in &records {
            result.accumulate(rec);
        }
        result
    }

    /// Configuration fingerprint used to validate checkpoint compatibility.
    /// Covers everything that changes trial outcomes, including a hash of
    /// the reference generations (so a different model or input set is
    /// rejected even at identical config).
    pub fn fingerprint(&self, scheme: &str) -> String {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a over reference tokens
        for reference in &self.references {
            for &t in reference {
                h = (h ^ t as u64).wrapping_mul(0x100_0000_01b3);
            }
            h = (h ^ 0xff).wrapping_mul(0x100_0000_01b3);
        }
        let layers = match &self.config.layer_filter {
            None => "all".to_string(),
            Some(kinds) => kinds
                .iter()
                .map(|k| k.name())
                .collect::<Vec<_>>()
                .join("+"),
        };
        format!(
            "v3|seed={}|trials={}|gen={}|fault={:?}|duration={:?}|target={}|steps={:?}|weight={:?}|layers={}|inputs={}|budget={:?}|deadline={:?}|recovery={}|repair={}|scheme={}|refs={:016x}",
            self.config.seed,
            self.config.trials_per_input,
            self.config.gen_tokens,
            self.config.fault_model,
            self.config.fault_duration,
            self.config.fault_target.name(),
            self.config.step_filter,
            self.config.step_weighting,
            layers,
            self.inputs.len(),
            self.config.trial_token_budget,
            self.config.trial_deadline_ms,
            self.config.recovery_retries,
            self.config.recovery_repair,
            scheme,
            h,
        )
    }

    /// Run the campaign with periodic checkpointing, optionally resuming a
    /// previous invocation's checkpoint. Because trials derive their RNG
    /// streams from `(seed, input, trial)` and the aggregate folds records
    /// in task order, an interrupted-and-resumed run produces a result
    /// bit-identical to an uninterrupted one.
    pub fn run_resumable(
        &self,
        protection: &dyn ProtectionFactory,
        pool: &WorkStealingPool,
        policy: &CheckpointPolicy,
    ) -> Result<CampaignRun, String> {
        let trials = self.config.trials_per_input;
        let total = self.inputs.len() * trials;
        let fingerprint = self.fingerprint(protection.scheme_name());

        let mut result = CampaignResult::default();
        let mut done = 0usize;
        if policy.resume {
            if let Some(cp) = CampaignCheckpoint::load(&policy.path)? {
                if cp.fingerprint != fingerprint {
                    return Err(format!(
                        "checkpoint {} belongs to a different campaign\n  found:    {}\n  expected: {}",
                        policy.path.display(),
                        cp.fingerprint,
                        fingerprint
                    ));
                }
                if cp.completed_tasks > total {
                    return Err(format!(
                        "checkpoint claims {} completed tasks of {total}",
                        cp.completed_tasks
                    ));
                }
                done = cp.completed_tasks;
                result = cp.result;
            }
        }
        let resumed_from = done;
        let every = policy.every.max(1);

        while done < total {
            let mut end = (done + every).min(total);
            if let Some(limit) = policy.abort_after {
                end = end.min(resumed_from + limit);
            }
            let tasks: Vec<usize> = (done..end).collect();
            let records = pool.map(&tasks, 8, |_, &task| {
                self.trial_record(protection, task / trials, task % trials)
            });
            for rec in &records {
                result.accumulate(rec);
            }
            done = end;
            CampaignCheckpoint {
                fingerprint: fingerprint.clone(),
                completed_tasks: done,
                result: result.clone(),
            }
            .save(&policy.path)
            .map_err(|e| format!("write checkpoint {}: {e}", policy.path.display()))?;

            if policy.abort_after.is_some_and(|limit| done >= resumed_from + limit)
                && done < total
            {
                return Ok(CampaignRun {
                    result,
                    resumed_from,
                    completed_tasks: done,
                    total_tasks: total,
                    interrupted: true,
                });
            }
        }

        // Complete: the checkpoint has served its purpose.
        std::fs::remove_file(&policy.path).ok();
        Ok(CampaignRun {
            result,
            resumed_from,
            completed_tasks: done,
            total_tasks: total,
            interrupted: false,
        })
    }

    /// Run every input once with protection but **no fault**, returning the
    /// outcome of each run against the clean reference. This is the Fig. 3
    /// experiment: protection with ill-fitting bounds can corrupt fault-free
    /// inference by clipping benign values.
    pub fn run_fault_free(
        &self,
        protection: &dyn ProtectionFactory,
        pool: &WorkStealingPool,
    ) -> Vec<Outcome> {
        let gen_tokens = self.config.gen_tokens;
        pool.map(self.inputs, 1, |i, prompt| {
            let mut protection_taps = protection.make();
            let mut taps = TapList::new();
            for t in protection_taps.iter_mut() {
                taps.push(t.as_mut());
            }
            let out = self.model.generate(prompt, gen_tokens, &mut taps);
            drop(taps);
            self.judge.classify(&self.references[i], &out.tokens)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::ExactJudge;
    use ft2_model::ModelConfig;

    fn tiny_campaign_parts() -> (Model, Vec<Vec<u32>>) {
        let model = Model::new(ModelConfig::tiny_opt());
        let inputs: Vec<Vec<u32>> = vec![
            vec![3, 14, 15, 92, 6],
            vec![27, 18, 28, 18, 2, 8],
            vec![1, 41, 42, 13, 56],
        ];
        (model, inputs)
    }

    #[test]
    fn campaign_runs_and_counts_all_trials() {
        let (model, inputs) = tiny_campaign_parts();
        let pool = WorkStealingPool::new(4);
        let judge = ExactJudge;
        let mut cfg = CampaignConfig::quick(FaultModel::SingleBit);
        cfg.trials_per_input = 20;
        cfg.gen_tokens = 8;
        let campaign = Campaign::new(&model, &inputs, &judge, cfg, &pool);
        assert_eq!(campaign.references().len(), 3);
        let result = campaign.run(&Unprotected, &pool);
        assert_eq!(result.counts.total(), 60);
        let layer_total: u64 = result.per_layer.values().map(|c| c.total()).sum();
        assert_eq!(layer_total, 60);
        let bit_total: u64 = result.per_bit_class.values().map(|c| c.total()).sum();
        assert_eq!(bit_total, 60);
        assert!(result.crashes.is_empty(), "clean engine must not crash");
    }

    #[test]
    fn campaign_is_deterministic_across_thread_counts() {
        let (model, inputs) = tiny_campaign_parts();
        let judge = ExactJudge;
        let mut cfg = CampaignConfig::quick(FaultModel::ExponentBit);
        cfg.trials_per_input = 15;
        cfg.gen_tokens = 6;

        let pool1 = WorkStealingPool::new(1);
        let c1 = Campaign::new(&model, &inputs, &judge, cfg.clone(), &pool1);
        let r1 = c1.run(&Unprotected, &pool1);

        let pool4 = WorkStealingPool::new(4);
        let c4 = Campaign::new(&model, &inputs, &judge, cfg, &pool4);
        let r4 = c4.run(&Unprotected, &pool4);

        assert_eq!(r1.counts, r4.counts);
        assert_eq!(r1.per_layer, r4.per_layer);
    }

    #[test]
    fn exponent_faults_cause_more_sdc_than_single_bit() {
        let (model, inputs) = tiny_campaign_parts();
        let pool = WorkStealingPool::new(4);
        let judge = ExactJudge;
        let mut cfg = CampaignConfig::quick(FaultModel::SingleBit);
        cfg.trials_per_input = 120;
        cfg.gen_tokens = 8;
        let c = Campaign::new(&model, &inputs, &judge, cfg.clone(), &pool);
        let single = c.run(&Unprotected, &pool);

        let mut cfg_exp = cfg;
        cfg_exp.fault_model = FaultModel::ExponentBit;
        let c_exp = Campaign::new(&model, &inputs, &judge, cfg_exp, &pool);
        let exp = c_exp.run(&Unprotected, &pool);

        assert!(
            exp.sdc_rate() >= single.sdc_rate(),
            "EXP ({}) must be at least as severe as 1-bit ({})",
            exp.sdc_rate(),
            single.sdc_rate()
        );
    }

    #[test]
    fn fault_free_run_without_protection_is_identical() {
        let (model, inputs) = tiny_campaign_parts();
        let pool = WorkStealingPool::new(2);
        let judge = ExactJudge;
        let campaign = Campaign::new(
            &model,
            &inputs,
            &judge,
            CampaignConfig::quick(FaultModel::SingleBit),
            &pool,
        );
        let outcomes = campaign.run_fault_free(&Unprotected, &pool);
        assert!(outcomes.iter().all(|o| *o == Outcome::MaskedIdentical));
    }

    #[test]
    fn first_token_filter_only_hits_step0() {
        let (model, inputs) = tiny_campaign_parts();
        let pool = WorkStealingPool::new(2);
        let judge = ExactJudge;
        let mut cfg = CampaignConfig::quick(FaultModel::SingleBit);
        cfg.trials_per_input = 10;
        cfg.gen_tokens = 6;
        cfg.step_filter = StepFilter::FirstTokenOnly;
        let campaign = Campaign::new(&model, &inputs, &judge, cfg, &pool);
        let result = campaign.run(&Unprotected, &pool);
        assert_eq!(result.first_token_faults.total(), result.counts.total());
    }

    /// A protection "scheme" that panics on a subset of trials — the
    /// adversarial case the crash isolation exists for.
    struct PanicOnLayer {
        every_nth_firing: usize,
    }

    struct PanickingTap {
        firing: usize,
        every: usize,
    }

    impl LayerTap for PanickingTap {
        fn on_output(&mut self, _ctx: &ft2_model::TapCtx, _data: &mut ft2_tensor::Matrix) {
            self.firing += 1;
            if self.firing == self.every {
                panic!("protection tap exploded on firing {}", self.firing);
            }
        }
    }

    impl ProtectionFactory for PanicOnLayer {
        fn make(&self) -> Vec<Box<dyn LayerTap>> {
            vec![Box::new(PanickingTap {
                firing: 0,
                every: self.every_nth_firing,
            })]
        }

        fn scheme_name(&self) -> &str {
            "Panicking"
        }
    }

    #[test]
    fn panicking_tap_is_classified_as_crash_not_fatal() {
        let (model, inputs) = tiny_campaign_parts();
        let pool = WorkStealingPool::new(4);
        let judge = ExactJudge;
        let mut cfg = CampaignConfig::quick(FaultModel::SingleBit);
        cfg.trials_per_input = 8;
        cfg.gen_tokens = 4;
        let campaign = Campaign::new(&model, &inputs, &judge, cfg, &pool);
        // Every trial's tap panics on its 3rd firing → all 24 trials crash.
        let result = campaign.run(&PanicOnLayer { every_nth_firing: 3 }, &pool);
        assert_eq!(result.counts.total(), 24);
        assert_eq!(result.counts.crash, 24);
        assert_eq!(result.crashes.len(), 24);
        let failure = &result.crashes[0];
        assert!(failure.message.contains("protection tap exploded"));
        assert!(failure.site.contains("campaign.rs"), "site: {}", failure.site);
        // Crash list is in task order.
        assert_eq!((failure.input, failure.trial), (0, 0));

        // The pool survives and runs a clean campaign afterwards.
        let clean = campaign.run(&Unprotected, &pool);
        assert_eq!(clean.counts.crash, 0);
        assert_eq!(clean.counts.total(), 24);
    }

    #[test]
    fn token_budget_watchdog_hangs_deterministically() {
        let (model, inputs) = tiny_campaign_parts();
        let pool = WorkStealingPool::new(2);
        let judge = ExactJudge;
        let mut cfg = CampaignConfig::quick(FaultModel::SingleBit);
        cfg.trials_per_input = 5;
        cfg.gen_tokens = 8;
        // Budget below gen_tokens: every trial trips the watchdog.
        cfg.trial_token_budget = Some(3);
        let campaign = Campaign::new(&model, &inputs, &judge, cfg, &pool);
        let result = campaign.run(&Unprotected, &pool);
        assert_eq!(result.counts.hang, 15);
        assert_eq!(result.counts.total(), 15);
        assert!(result.crashes.is_empty(), "hangs are not crashes");

        // A generous budget changes nothing.
        let mut cfg2 = CampaignConfig::quick(FaultModel::SingleBit);
        cfg2.trials_per_input = 5;
        cfg2.gen_tokens = 8;
        let baseline = Campaign::new(&model, &inputs, &judge, cfg2.clone(), &pool)
            .run(&Unprotected, &pool);
        cfg2.trial_token_budget = Some(1000);
        let budgeted = Campaign::new(&model, &inputs, &judge, cfg2, &pool)
            .run(&Unprotected, &pool);
        assert_eq!(baseline.counts, budgeted.counts);
    }

    #[test]
    fn traced_replay_matches_campaign_record() {
        let (model, inputs) = tiny_campaign_parts();
        let pool = WorkStealingPool::new(2);
        let judge = ExactJudge;
        let mut cfg = CampaignConfig::quick(FaultModel::ExponentBit);
        cfg.trials_per_input = 6;
        cfg.gen_tokens = 6;
        let campaign = Campaign::new(&model, &inputs, &judge, cfg, &pool);
        let full = campaign.run(&Unprotected, &pool);

        // Replaying each trial individually reproduces the aggregate.
        let mut replayed = CampaignResult::default();
        for input in 0..inputs.len() {
            for trial in 0..6 {
                let (rec, trace) = campaign.trial_record_traced(&Unprotected, input, trial);
                assert_eq!((rec.input, rec.trial), (input, trial));
                assert!(trace.firings > 0);
                assert!(
                    trace.injected.is_some(),
                    "completed trial must reach its site"
                );
                replayed.accumulate(&rec);
            }
        }
        assert_eq!(replayed, full);
    }

    #[test]
    fn resumable_run_matches_uninterrupted_bit_for_bit() {
        let (model, inputs) = tiny_campaign_parts();
        let pool = WorkStealingPool::new(4);
        let judge = ExactJudge;
        let mut cfg = CampaignConfig::quick(FaultModel::ExponentBit);
        cfg.trials_per_input = 10;
        cfg.gen_tokens = 5;
        let campaign = Campaign::new(&model, &inputs, &judge, cfg, &pool);
        let uninterrupted = campaign.run(&Unprotected, &pool);

        let path = std::env::temp_dir().join("ft2-campaign-resume-test.json");
        std::fs::remove_file(&path).ok();

        // First invocation: killed after 7 tasks (mid-input).
        let first = campaign
            .run_resumable(
                &Unprotected,
                &pool,
                &CheckpointPolicy {
                    path: path.clone(),
                    every: 4,
                    resume: true,
                    abort_after: Some(7),
                },
            )
            .unwrap();
        assert!(first.interrupted);
        assert_eq!(first.completed_tasks, 7);
        assert!(path.exists(), "interrupted run must leave its checkpoint");

        // Second invocation resumes and completes.
        let second = campaign
            .run_resumable(&Unprotected, &pool, &CheckpointPolicy::resume_at(&path, 4))
            .unwrap();
        assert!(!second.interrupted);
        assert_eq!(second.resumed_from, 7);
        assert_eq!(second.completed_tasks, 30);
        assert_eq!(second.result, uninterrupted);
        assert!(!path.exists(), "completed run must remove its checkpoint");
    }

    #[test]
    fn resume_rejects_foreign_checkpoint() {
        let (model, inputs) = tiny_campaign_parts();
        let pool = WorkStealingPool::new(2);
        let judge = ExactJudge;
        let mut cfg = CampaignConfig::quick(FaultModel::SingleBit);
        cfg.trials_per_input = 4;
        cfg.gen_tokens = 4;
        let campaign = Campaign::new(&model, &inputs, &judge, cfg.clone(), &pool);

        let path = std::env::temp_dir().join("ft2-campaign-foreign-test.json");
        std::fs::remove_file(&path).ok();
        let partial = campaign
            .run_resumable(
                &Unprotected,
                &pool,
                &CheckpointPolicy {
                    path: path.clone(),
                    every: 4,
                    resume: false,
                    abort_after: Some(4),
                },
            )
            .unwrap();
        assert!(partial.interrupted);

        // Different seed → different fingerprint → resume must refuse.
        cfg.seed ^= 0xDEAD;
        let other = Campaign::new(&model, &inputs, &judge, cfg, &pool);
        let err = other
            .run_resumable(&Unprotected, &pool, &CheckpointPolicy::resume_at(&path, 4))
            .unwrap_err();
        assert!(err.contains("different campaign"), "{err}");
        std::fs::remove_file(&path).ok();
    }
}
