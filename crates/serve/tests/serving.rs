//! End-to-end serving guarantees: batch/solo token identity, per-request
//! fault isolation, eviction, backpressure, and KV repair.

use std::sync::{Arc, OnceLock};

use ft2_model::{Model, ModelConfig, RecoveryPolicy, TapList};
use ft2_parallel::WorkStealingPool;
use ft2_serve::scheduler::{EvictReason, Outcome, Request, Scheduler, ServeConfig, SubmitError};
use ft2_serve::{Server, StormTap};

fn model() -> Arc<Model> {
    static MODEL: OnceLock<Arc<Model>> = OnceLock::new();
    Arc::clone(MODEL.get_or_init(|| Arc::new(Model::new(ModelConfig::tiny_llama()))))
}

fn solo_tokens(model: &Model, prompt: &[u32], gen: usize) -> Vec<u32> {
    let mut taps = TapList::new();
    model.generate(prompt, gen, &mut taps).tokens
}

const PROMPTS: [&[u32]; 4] = [
    &[3, 14, 15, 92, 6],
    &[27, 1, 82, 8],
    &[45, 45, 45],
    &[9, 8, 7, 6, 5, 4],
];
const GEN: usize = 8;

fn request(i: usize, tap: Option<Box<dyn ft2_model::LayerTap + Send>>) -> Request {
    Request {
        id: i as u64,
        prompt: PROMPTS[i].to_vec(),
        gen_tokens: GEN,
        tap,
    }
}

#[test]
fn fault_free_batch_matches_single_sequence_generation() {
    let model = model();
    let pool = WorkStealingPool::new(3);
    let mut sched = Scheduler::new(model.clone(), ServeConfig::default());
    for i in 0..4 {
        sched.try_submit(request(i, None)).unwrap();
    }
    let mut done = sched.run(&pool);
    assert_eq!(done.len(), 4);
    done.sort_by_key(|c| c.id);
    for (i, c) in done.iter().enumerate() {
        assert_eq!(c.outcome, Outcome::Completed);
        assert_eq!(c.tokens, solo_tokens(&model, PROMPTS[i], GEN), "request {i}");
        assert_eq!(c.rollbacks, 0);
        assert_eq!(c.token_ns.len(), GEN);
    }
    assert_eq!(sched.arena_mut().pages_in_use(), 0, "all pages returned");
}

#[test]
fn transient_storm_is_isolated_to_the_storming_request() {
    let model = model();
    let pool = WorkStealingPool::new(3);
    let config = ServeConfig {
        recovery: RecoveryPolicy::retries(2),
        ..ServeConfig::default()
    };
    let mut sched = Scheduler::new(model.clone(), config);
    for i in 0..4 {
        let tap: Option<Box<dyn ft2_model::LayerTap + Send>> =
            (i == 0).then(|| Box::new(StormTap::transient(3, 1)) as _);
        sched.try_submit(request(i, tap)).unwrap();
    }
    let mut done = sched.run(&pool);
    done.sort_by_key(|c| c.id);
    assert_eq!(done.len(), 4);
    for (i, c) in done.iter().enumerate() {
        assert_eq!(c.outcome, Outcome::Completed, "request {i}");
        // Rollback discards the storm entirely: every request — including
        // the storming one — matches its clean solo generation.
        assert_eq!(c.tokens, solo_tokens(&model, PROMPTS[i], GEN), "request {i}");
        if i == 0 {
            assert_eq!(c.storms, 1, "one storming step");
            assert_eq!(c.rollbacks, 1, "healed after one rollback");
        } else {
            assert_eq!(c.storms, 0);
            assert_eq!(c.rollbacks, 0, "clean request {i} must not roll back");
        }
    }
}

#[test]
fn persistent_storm_is_evicted_without_stalling_batchmates() {
    let model = model();
    let pool = WorkStealingPool::new(3);
    let config = ServeConfig {
        recovery: RecoveryPolicy::retries(2).with_repair(),
        ..ServeConfig::default()
    };
    let mut sched = Scheduler::new(model.clone(), config);
    for i in 0..4 {
        let tap: Option<Box<dyn ft2_model::LayerTap + Send>> =
            (i == 0).then(|| Box::new(StormTap::persistent(2)) as _);
        sched.try_submit(request(i, tap)).unwrap();
    }
    let mut done = sched.run(&pool);
    done.sort_by_key(|c| c.id);
    assert_eq!(done.len(), 4);
    match done[0].outcome {
        Outcome::Evicted(EvictReason::RetriesExhausted { step, redecodes }) => {
            assert_eq!(step, 2, "evicted at the persistently storming step");
            assert!(redecodes >= 2, "budget spent before eviction");
        }
        other => panic!("storming request should be evicted, got {other:?}"),
    }
    assert!(done[0].tokens.len() < GEN, "eviction returns a prefix");
    assert!(done[0].repair_retries >= 1, "repair rung was attempted");
    for (i, c) in done.iter().enumerate().skip(1) {
        assert_eq!(c.outcome, Outcome::Completed, "batchmate {i} completes");
        assert_eq!(c.tokens, solo_tokens(&model, PROMPTS[i], GEN), "batchmate {i}");
    }
    assert_eq!(sched.arena_mut().pages_in_use(), 0, "evicted pages returned");
}

#[test]
fn disabled_policy_accepts_storming_tokens() {
    let model = model();
    let pool = WorkStealingPool::new(2);
    let config = ServeConfig {
        recovery: RecoveryPolicy::disabled(),
        ..ServeConfig::default()
    };
    let mut sched = Scheduler::new(model.clone(), config);
    let tap: Box<dyn ft2_model::LayerTap + Send> = Box::new(StormTap::persistent(2));
    sched.try_submit(request(0, Some(tap))).unwrap();
    let done = sched.run(&pool);
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].outcome, Outcome::Completed, "no eviction when disabled");
    assert_eq!(done[0].tokens.len(), GEN);
    assert!(done[0].storms > 0, "storms are still recorded");
    assert_eq!(done[0].rollbacks, 0, "no rollback when disabled");
}

#[test]
fn admission_control_backpressures_and_validates() {
    let model = model();
    let config = ServeConfig {
        queue_depth: 2,
        ..ServeConfig::default()
    };
    let mut sched = Scheduler::new(model.clone(), config);
    sched.try_submit(request(0, None)).unwrap();
    sched.try_submit(request(1, None)).unwrap();
    assert_eq!(
        sched.try_submit(request(2, None)),
        Err(SubmitError::QueueFull),
        "third submission must backpressure"
    );
    assert_eq!(
        sched.try_submit(Request {
            id: 9,
            prompt: vec![],
            gen_tokens: 4,
            tap: None
        }),
        Err(SubmitError::EmptyPrompt)
    );
    let max_seq = model.config().max_seq;
    assert_eq!(
        sched.try_submit(Request {
            id: 10,
            prompt: vec![1; max_seq],
            gen_tokens: 1,
            tap: None
        }),
        Err(SubmitError::TooLong {
            requested: max_seq + 1,
            max_seq
        })
    );
}

#[test]
fn repair_rung_rebuilds_corrupted_kv_and_recovers_the_tokens() {
    let model = model();
    let pool = WorkStealingPool::new(2);
    let config = ServeConfig {
        max_batch: 1,
        recovery: RecoveryPolicy::retries(1).with_repair(),
        kv_guard: true,
        ..ServeConfig::default()
    };
    let mut sched = Scheduler::new(model.clone(), config);
    // Storm strikes step 4 and survives the single rollback; only the
    // repair rung's extra re-decode (heal_after = 2) clears it.
    let tap: Box<dyn ft2_model::LayerTap + Send> = Box::new(StormTap::transient(4, 2));
    sched.try_submit(request(0, Some(tap))).unwrap();
    // Step until the request has accepted 4 tokens (the next decode is the
    // storm target), then corrupt a sealed KV row behind the guard's back.
    loop {
        assert!(sched.step(&pool), "request finished before the drill armed");
        let seq = sched.lane_seq(0).expect("request is active");
        if seq.len() == PROMPTS[0].len() + 3 {
            let row = seq.row_of(1);
            sched.arena_mut().k_row_mut(0, row)[0] += 7.0;
            break;
        }
    }
    let done = sched.run(&pool);
    assert_eq!(done.len(), 1);
    let c = &done[0];
    assert_eq!(c.outcome, Outcome::Completed);
    assert_eq!(c.repair_retries, 1, "exactly one repair rung");
    assert!(c.kv_repairs > 0, "the corrupted position was rebuilt");
    // Post-repair decode runs on rebuilt (clean) state: the tokens match
    // the clean solo generation bit-for-bit.
    assert_eq!(c.tokens, solo_tokens(&model, PROMPTS[0], GEN));
}

#[test]
fn server_serves_concurrent_submissions_end_to_end() {
    let model = Arc::new(Model::new(ModelConfig::tiny_opt()));
    let server = Server::spawn(Arc::clone(&model), ServeConfig::default(), 2);
    let mut expected = Vec::new();
    for i in 0..6 {
        let prompt: Vec<u32> = (0..4 + i % 3).map(|j| (i * 13 + j) as u32).collect();
        let id = server.submit(prompt.clone(), GEN, None).unwrap();
        expected.push((id, solo_tokens(&model, &prompt, GEN)));
    }
    let mut done = server.wait_all();
    assert_eq!(done.len(), 6);
    done.sort_by_key(|c| c.id);
    for (c, (id, toks)) in done.iter().zip(&expected) {
        assert_eq!(c.id, *id);
        assert_eq!(c.outcome, Outcome::Completed);
        assert_eq!(&c.tokens, toks, "request {id}");
    }
    assert_eq!(server.submit(vec![], 4, None), Err(SubmitError::EmptyPrompt));
}

/// Threads currently alive in this process (Linux: /proc/self/task).
fn live_threads() -> usize {
    std::fs::read_dir("/proc/self/task").map_or(0, |d| d.count())
}

#[test]
fn shutdown_gracefully_drains_every_submitted_request() {
    let model = model();
    // One lane: later submissions sit in the queue when shutdown lands.
    let config = ServeConfig {
        max_batch: 1,
        ..ServeConfig::default()
    };
    let server = Server::spawn(Arc::clone(&model), config, 2);
    const DRAIN_GEN: usize = 48;
    let mut ids = Vec::new();
    ids.push(server.submit(PROMPTS[0].to_vec(), DRAIN_GEN, None).unwrap());
    // Let the worker admit request 0 (it is active or already complete by
    // the time the drain lands), then pile four more behind the single
    // lane so the drain must reject them.
    std::thread::sleep(std::time::Duration::from_millis(30));
    for i in 1..5 {
        ids.push(
            server
                .submit(PROMPTS[i % 4].to_vec(), DRAIN_GEN, None)
                .unwrap(),
        );
    }
    let mut done = server.shutdown();
    assert_eq!(done.len(), 5, "every submission is accounted for");
    done.sort_by_key(|c| c.id);
    let mut completed = 0;
    for c in &done {
        assert!(ids.contains(&c.id));
        match c.outcome {
            Outcome::Completed => {
                completed += 1;
                let p = PROMPTS[c.id as usize % 4];
                assert_eq!(
                    c.tokens,
                    solo_tokens(&model, p, DRAIN_GEN),
                    "drained in-flight request must finish normally"
                );
            }
            Outcome::Rejected(reason) => {
                assert_eq!(
                    reason,
                    ft2_serve::RejectReason::Shutdown,
                    "queued work gets the typed shutdown rejection"
                );
                assert!(c.tokens.is_empty(), "never-admitted request has no tokens");
            }
            Outcome::Evicted(_) => panic!("nothing faulted in this test"),
        }
    }
    assert!(
        completed >= 1,
        "at least the active lane must finish normally, got {done:?}"
    );
    assert!(
        done.iter()
            .any(|c| matches!(c.outcome, Outcome::Rejected(_))),
        "with one lane and five requests, some must be rejected at drain"
    );
}

#[test]
fn idle_shutdown_joins_cleanly() {
    let model = model();
    let server = Server::spawn(Arc::clone(&model), ServeConfig::default(), 2);
    assert!(server.shutdown().is_empty());
}

#[test]
fn repeated_start_stop_cycles_leak_no_threads() {
    let model = model();
    // Warm up once so lazily-spawned process-wide threads don't skew the
    // baseline.
    drop(Server::spawn(Arc::clone(&model), ServeConfig::default(), 2));
    let baseline = live_threads();
    for cycle in 0..8 {
        let server = Server::spawn(Arc::clone(&model), ServeConfig::default(), 2);
        let id = server.submit(PROMPTS[0].to_vec(), 3, None).unwrap();
        let done = server.shutdown();
        assert!(
            done.iter().any(|c| c.id == id),
            "cycle {cycle}: request accounted for"
        );
    }
    // Worker + pool threads must all be joined each cycle.
    let after = live_threads();
    assert!(
        after <= baseline,
        "start/stop cycles leaked threads: {baseline} -> {after}"
    );
}
