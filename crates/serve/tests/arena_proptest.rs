//! Property-based tests of the paged KV arena: page accounting is an
//! involution, concurrent sequences never alias, and the arena-backed
//! batch path stores bit-identical KV to the single-sequence cache.

use std::sync::OnceLock;

use ft2_model::engine::KvCache;
use ft2_model::{Model, ModelConfig, TapList};
use ft2_parallel::WorkStealingPool;
use ft2_serve::engine::{batch_step, BatchLane, BatchScratch};
use ft2_serve::{KvArena, KvSeq, KV_PAGE};
use proptest::prelude::*;

fn model() -> &'static Model {
    static MODEL: OnceLock<Model> = OnceLock::new();
    MODEL.get_or_init(|| Model::new(ModelConfig::tiny_llama()))
}

proptest! {
    /// Allocation involution: any interleaving of pushes, truncates, and
    /// releases across several sequences keeps page accounting exact, and
    /// releasing everything returns the arena to fully free.
    #[test]
    fn page_accounting_is_an_involution(
        ops in prop::collection::vec((0usize..4, 0usize..3, 0usize..40), 1..120)
    ) {
        let mut arena = KvArena::new(2, 4);
        let mut seqs = [KvSeq::new(), KvSeq::new(), KvSeq::new(), KvSeq::new()];
        for (s, kind, amount) in ops {
            match kind {
                // push `amount` positions
                0 => {
                    for _ in 0..amount {
                        seqs[s].push(&mut arena);
                    }
                }
                // truncate to at most the current length
                1 => {
                    let target = amount.min(seqs[s].len());
                    seqs[s].truncate(target, &mut arena);
                }
                // release everything
                _ => seqs[s].release(&mut arena),
            }
            // Page accounting stays exact after every operation.
            let held: usize = seqs.iter().map(|q| q.pages().len()).sum();
            prop_assert_eq!(arena.pages_in_use(), held);
            for q in &seqs {
                prop_assert_eq!(q.pages().len(), q.len().div_ceil(KV_PAGE));
            }
        }
        for q in seqs.iter_mut() {
            q.release(&mut arena);
        }
        prop_assert_eq!(arena.pages_in_use(), 0);
        prop_assert_eq!(arena.free_pages(), arena.capacity_pages());
    }

    /// No cross-request page aliasing: sequences hold disjoint page sets,
    /// and a marker written through one sequence's rows never shows up in
    /// another's.
    #[test]
    fn sequences_never_alias(
        lens in prop::collection::vec(1usize..60, 2..5)
    ) {
        let mut arena = KvArena::new(1, 2);
        let mut seqs: Vec<KvSeq> = lens.iter().map(|_| KvSeq::new()).collect();
        // Interleave pushes round-robin so page allocations interleave too.
        let max_len = *lens.iter().max().unwrap();
        for round in 0..max_len {
            for (s, q) in seqs.iter_mut().enumerate() {
                if round < lens[s] {
                    let row = q.push(&mut arena);
                    arena.k_row_mut(0, row)[0] = (s * 1000 + round) as f32;
                }
            }
        }
        // Disjoint page sets.
        for a in 0..seqs.len() {
            for b in a + 1..seqs.len() {
                for p in seqs[a].pages() {
                    prop_assert!(
                        !seqs[b].pages().contains(p),
                        "page {} shared by sequences {} and {}", p, a, b
                    );
                }
            }
        }
        // Every marker survives every other sequence's writes.
        for (s, q) in seqs.iter().enumerate() {
            for j in 0..q.len() {
                let got = arena.k_row(0, q.row_of(j))[0];
                prop_assert_eq!(got, (s * 1000 + j) as f32);
            }
        }
    }

    /// The arena-backed batch decode stores bit-identical KV rows to the
    /// single-sequence KV cache for arbitrary prompts.
    #[test]
    fn arena_kv_is_bit_identical_to_the_single_sequence_cache(
        prompt in prop::collection::vec(0u32..500, 1..8),
        gen in 2usize..5
    ) {
        let model = model();
        let pool = WorkStealingPool::new(2);

        // Reference: incremental single-sequence decode.
        let mut cache = KvCache::new(model.config());
        let mut taps = TapList::new();
        let hidden = model.forward_step(&prompt, 0, 0, &mut cache, &mut taps);
        let last = hidden.slice_rows(hidden.rows() - 1, hidden.rows());
        let mut tokens = vec![ft2_tensor::argmax(&model.logits(&last)) as u32];
        for step in 1..gen {
            let pos = prompt.len() + step - 1;
            let h = model.forward_step(&[tokens[step - 1]], pos, step, &mut cache, &mut taps);
            tokens.push(ft2_tensor::argmax(&model.logits(&h)) as u32);
        }

        // Arena path: copy the prefill rows, then batch-step a single lane.
        let mut arena = KvArena::new(model.config().blocks, model.config().hidden);
        let mut seq = KvSeq::new();
        let mut pcache = KvCache::new(model.config());
        let h = model.forward_step(&prompt, 0, 0, &mut pcache, &mut taps);
        for j in 0..prompt.len() {
            let row = seq.push(&mut arena);
            for b in 0..pcache.num_blocks() {
                arena.k_row_mut(b, row).copy_from_slice(pcache.block(b).k.row(j));
                arena.v_row_mut(b, row).copy_from_slice(pcache.block(b).v.row(j));
            }
        }
        let hl = h.slice_rows(h.rows() - 1, h.rows());
        let mut got = vec![ft2_tensor::argmax(&model.logits(&hl)) as u32];
        let mut scratch = BatchScratch::new();
        for step in 1..gen {
            let mut lanes = vec![BatchLane {
                token: got[step - 1],
                pos: prompt.len() + step - 1,
                step,
                seq: &mut seq,
                tap: None,
            }];
            let next = batch_step(model, &mut arena, &mut lanes, &pool, &mut scratch);
            drop(lanes);
            got.push(next[0]);
        }

        prop_assert_eq!(&got, &tokens);
        for j in 0..seq.len() {
            let row = seq.row_of(j);
            for b in 0..cache.num_blocks() {
                prop_assert_eq!(arena.k_row(b, row), cache.block(b).k.row(j));
                prop_assert_eq!(arena.v_row(b, row), cache.block(b).v.row(j));
            }
        }
    }
}
