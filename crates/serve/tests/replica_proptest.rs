//! Property: cross-replica failover is invisible in the token stream.
//!
//! For every zoo config, replica count, decode-pool width, and crash
//! schedule, a request that fails over mid-generation must produce exactly
//! the token sequence its solo generation produces — the accepted prefix
//! is carried across verbatim and the survivor's re-prefill rebuilds KV by
//! the bit-identical replay shape. Includes failover striking while a lane
//! is mid-rollback (its own transient storm still unhealed).

use std::time::Duration;

use ft2_fault::{ReplicaFaultKind, ReplicaFaultSpec};
use ft2_model::zoo::ZooModel;
use ft2_model::{Model, TapList};
use ft2_parallel::WorkStealingPool;
use ft2_serve::replica::{ReplicaConfig, ReplicaSet, RetryPolicy};
use ft2_serve::scheduler::{Outcome, Request};
use ft2_serve::StormTap;
use proptest::prelude::*;

fn solo_tokens(model: &Model, prompt: &[u32], gen: usize) -> Vec<u32> {
    let mut taps = TapList::new();
    model.generate(prompt, gen, &mut taps).tokens
}

fn config(replicas: usize) -> ReplicaConfig {
    ReplicaConfig {
        replicas,
        retry: RetryPolicy {
            budget: 8,
            backoff_ms: 1,
            deadline_ms: 0,
        },
        heartbeat: Duration::from_millis(10),
        ..ReplicaConfig::default()
    }
}

/// Four deterministic prompts derived from a seed, valid for every zoo
/// vocab (512).
fn prompts(seed: u64) -> Vec<Vec<u32>> {
    (0..4u64)
        .map(|i| {
            let len = 3 + ((seed ^ i) % 4) as usize;
            (0..len)
                .map(|j| ((seed.wrapping_mul(31).wrapping_add(i * 7 + j as u64 * 13)) % 512) as u32)
                .collect()
        })
        .collect()
}

/// Run four requests against a replica set with `fault` injected and
/// assert every completion is bit-identical to solo generation on the
/// prototype.
fn assert_failover_identity(
    zoo: ZooModel,
    replicas: usize,
    threads: usize,
    seed: u64,
    gen: usize,
    fault: ReplicaFaultSpec,
) {
    let prototype = zoo.spec().build();
    let pool = WorkStealingPool::new(threads);
    let mut set = ReplicaSet::new(&prototype, config(replicas));
    set.inject(fault);
    let prompts = prompts(seed);
    for (i, p) in prompts.iter().enumerate() {
        set.try_submit(Request {
            id: i as u64,
            prompt: p.clone(),
            gen_tokens: gen,
            tap: None,
        })
        .unwrap();
    }
    let mut done = set.run(&pool);
    assert_eq!(done.len(), 4, "zoo {zoo:?}: every request must complete");
    done.sort_by_key(|c| c.inner.id);
    for (i, c) in done.iter().enumerate() {
        assert_eq!(
            c.inner.outcome,
            Outcome::Completed,
            "zoo {zoo:?} request {i}"
        );
        assert_eq!(
            c.inner.tokens,
            solo_tokens(&prototype, &prompts[i], gen),
            "zoo {zoo:?} request {i}: failover changed the token stream \
             (replicas={replicas}, threads={threads}, seed={seed})"
        );
    }
}

/// Exhaustive sweep: every zoo config survives a mid-generation crash with
/// a bit-identical handoff. Deterministic (no sampling) so a regression
/// names the exact config.
#[test]
fn every_zoo_config_hands_off_bit_identically() {
    for zoo in ZooModel::ALL {
        assert_failover_identity(
            zoo,
            2,
            2,
            0xF72,
            6,
            ReplicaFaultSpec::transient(0, ReplicaFaultKind::Crash, 2),
        );
    }
}

proptest! {
    /// Sampled: any (config, replica count, thread count, crash step)
    /// combination preserves token identity across a crash failover.
    #[test]
    fn crash_failover_preserves_token_identity(
        shape in (0usize..7, 2usize..4, 1usize..5),
        schedule in (0u64..6, 0u64..1024),
    ) {
        let (zoo_i, replicas, threads) = shape;
        let (at_step, seed) = schedule;
        assert_failover_identity(
            ZooModel::ALL[zoo_i],
            replicas,
            threads,
            seed,
            5,
            ReplicaFaultSpec::transient(0, ReplicaFaultKind::Crash, at_step),
        );
    }

    /// Sampled: a watchdog-aborted hang hands off exactly like a crash.
    #[test]
    fn hang_failover_preserves_token_identity(
        shape in (0usize..7, 1usize..4, 0u64..5, 0u64..1024),
    ) {
        let (zoo_i, threads, at_step, seed) = shape;
        assert_failover_identity(
            ZooModel::ALL[zoo_i],
            2,
            threads,
            seed,
            5,
            ReplicaFaultSpec::transient(0, ReplicaFaultKind::Hang, at_step),
        );
    }
}

/// Failover striking while a lane is mid-rollback: the request's own
/// transient storm is still unhealed when its replica crashes, so the
/// contested token's redecode finishes on the survivor. The accepted
/// prefix excludes the contested token by construction (tokens are pushed
/// only after the ladder accepts), so the continuation still matches solo
/// generation exactly.
#[test]
fn failover_mid_rollback_is_bit_identical() {
    for crash_step in 2u64..6 {
        let prototype = ZooModel::Qwen2_1_5B.spec().build();
        let pool = WorkStealingPool::new(2);
        let mut set = ReplicaSet::new(&prototype, config(2));
        set.inject(ReplicaFaultSpec::transient(
            0,
            ReplicaFaultKind::Crash,
            crash_step,
        ));
        let prompts = prompts(0xA11);
        for (i, p) in prompts.iter().enumerate() {
            // Every request storms its own step 2 and needs 3 rollbacks to
            // heal, so some lane is mid-rollback at every crash_step in
            // the sweep.
            set.try_submit(Request {
                id: i as u64,
                prompt: p.clone(),
                gen_tokens: 6,
                tap: Some(Box::new(StormTap::transient(2, 3))),
            })
            .unwrap();
        }
        let mut done = set.run(&pool);
        assert_eq!(done.len(), 4);
        done.sort_by_key(|c| c.inner.id);
        for (i, c) in done.iter().enumerate() {
            assert_eq!(c.inner.outcome, Outcome::Completed, "request {i}");
            assert_eq!(
                c.inner.tokens,
                solo_tokens(&prototype, &prompts[i], 6),
                "crash at step {crash_step}, request {i}: mid-rollback \
                 failover changed the token stream"
            );
        }
    }
}
