//! Cross-replica failover guarantees: zero-token-loss handoff with
//! bit-identical continuation, hang detection through the shared heartbeat
//! monitor, breaker-driven quarantine of a storming replica, live weight
//! rebuild from the golden copy, and typed budget/deadline rejections.

use std::sync::OnceLock;
use std::time::Duration;

use ft2_fault::{FaultDuration, ReplicaFaultKind, ReplicaFaultSpec};
use ft2_model::{Model, ModelConfig, TapList};
use ft2_parallel::WorkStealingPool;
use ft2_serve::replica::{ReplicaConfig, ReplicaHealth, ReplicaSet, RetryPolicy};
use ft2_serve::scheduler::{Outcome, RejectReason, Request};

fn model() -> &'static Model {
    static MODEL: OnceLock<Model> = OnceLock::new();
    MODEL.get_or_init(|| Model::new(ModelConfig::tiny_llama()))
}

fn solo_tokens(model: &Model, prompt: &[u32], gen: usize) -> Vec<u32> {
    let mut taps = TapList::new();
    model.generate(prompt, gen, &mut taps).tokens
}

const PROMPTS: [&[u32]; 4] = [
    &[3, 14, 15, 92, 6],
    &[27, 1, 82, 8],
    &[45, 45, 45],
    &[9, 8, 7, 6, 5, 4],
];
const GEN: usize = 8;

fn request(i: usize) -> Request {
    Request {
        id: i as u64,
        prompt: PROMPTS[i].to_vec(),
        gen_tokens: GEN,
        tap: None,
    }
}

fn config() -> ReplicaConfig {
    ReplicaConfig {
        replicas: 2,
        heartbeat: Duration::from_millis(10),
        ..ReplicaConfig::default()
    }
}

/// Run all four requests to completion and assert every one is
/// bit-identical to its solo generation.
fn assert_all_identical(set: &mut ReplicaSet, pool: &WorkStealingPool) {
    let mut done = set.run(pool);
    assert_eq!(done.len(), 4);
    done.sort_by_key(|c| c.inner.id);
    for (i, c) in done.iter().enumerate() {
        assert_eq!(c.inner.outcome, Outcome::Completed, "request {i}");
        assert_eq!(
            c.inner.tokens,
            solo_tokens(model(), PROMPTS[i], GEN),
            "request {i} diverged from solo generation"
        );
    }
}

#[test]
fn fault_free_replica_set_matches_solo_generation() {
    let pool = WorkStealingPool::new(2);
    let mut set = ReplicaSet::new(model(), config());
    for i in 0..4 {
        set.try_submit(request(i)).unwrap();
    }
    assert_all_identical(&mut set, &pool);
    assert_eq!(set.stats().failovers, 0);
    assert_eq!(set.stats().quarantines, 0);
}

#[test]
fn crash_mid_batch_hands_off_without_losing_a_token() {
    let pool = WorkStealingPool::new(2);
    let mut set = ReplicaSet::new(model(), config());
    // Both replicas get work (least-loaded routing alternates), replica 0
    // crashes mid-generation: its requests must fail over to replica 1
    // carrying their accepted prefixes and finish bit-identical to solo.
    set.inject(ReplicaFaultSpec::transient(0, ReplicaFaultKind::Crash, 3));
    for i in 0..4 {
        set.try_submit(request(i)).unwrap();
    }
    assert_all_identical(&mut set, &pool);
    let stats = *set.stats();
    assert_eq!(stats.crashes, 1);
    assert!(stats.failovers >= 1, "crash must fail requests over");
    assert!(
        stats.handoff_tokens >= 1,
        "mid-generation crash must carry accepted tokens across"
    );
    assert_eq!(stats.rebuilds, 1, "crashed replica rebuilds and rejoins");
    assert_eq!(set.health(0), ReplicaHealth::Healthy, "rejoined");
}

#[test]
fn hang_is_cancelled_by_the_watchdog_and_failed_over() {
    let pool = WorkStealingPool::new(2);
    let mut set = ReplicaSet::new(model(), config());
    assert!(set.watchdog_armed());
    set.inject(ReplicaFaultSpec::transient(0, ReplicaFaultKind::Hang, 2));
    for i in 0..4 {
        set.try_submit(request(i)).unwrap();
    }
    assert_all_identical(&mut set, &pool);
    let stats = *set.stats();
    assert_eq!(stats.hangs, 1, "watchdog abort classified as hang");
    assert_eq!(stats.crashes, 0);
    assert!(stats.failovers >= 1);
    assert_eq!(stats.rebuilds, 1);
}

#[test]
fn disabled_watchdog_degrades_hang_to_immediate_abort() {
    let pool = WorkStealingPool::new(2);
    let mut cfg = config();
    cfg.heartbeat = Duration::ZERO;
    let mut set = ReplicaSet::new(model(), cfg);
    assert!(!set.watchdog_armed());
    set.inject(ReplicaFaultSpec::transient(0, ReplicaFaultKind::Hang, 2));
    for i in 0..4 {
        set.try_submit(request(i)).unwrap();
    }
    // The hang must not spin for the (absent) monitor: the abort is
    // immediate and the run completes identically.
    assert_all_identical(&mut set, &pool);
    assert_eq!(set.stats().hangs, 1);
}

#[test]
fn storming_replica_is_quarantined_and_its_requests_retried_clean() {
    let pool = WorkStealingPool::new(2);
    let mut cfg = config();
    cfg.quarantine_errs = 2;
    let mut set = ReplicaSet::new(model(), cfg);
    set.inject(ReplicaFaultSpec::persistent(0, ReplicaFaultKind::ActStorm, 0));
    for i in 0..4 {
        set.try_submit(request(i)).unwrap();
    }
    assert_all_identical(&mut set, &pool);
    let stats = *set.stats();
    assert!(
        stats.storm_evictions >= 1,
        "storm-injected evictions are retried, got {stats:?}"
    );
    assert!(stats.quarantines >= 1, "breaker must trip on the storm");
    assert!(stats.rebuilds >= 1, "quarantined replica rebuilds");
}

#[test]
fn rebuild_repairs_corrupted_weights_from_the_golden_copy() {
    let pool = WorkStealingPool::new(2);
    let mut set = ReplicaSet::new(model(), config());
    set.quarantine(0);
    let touched = set
        .with_replica_weights(0, |w| {
            // Corrupt a few elements across two blocks.
            for b in 0..2 {
                let layer = w.blocks[b]
                    .layer_mut(ft2_model::LayerKind::QProj)
                    .expect("qproj");
                layer.weight.as_mut_slice()[3] += 1.0e4;
            }
            2
        })
        .expect("quarantined replica's weights are accessible");
    assert_eq!(touched, 2);
    assert!(
        set.with_replica_weights(1, |_| ()).is_none(),
        "serving replica's weights must not be touchable"
    );
    // Drive the set with work on the survivor until the rebuild finishes.
    for i in 0..4 {
        set.try_submit(request(i)).unwrap();
    }
    assert_all_identical(&mut set, &pool);
    let stats = *set.stats();
    assert_eq!(stats.tiles_repaired, 2, "both corrupted tiles restored");
    assert_eq!(set.health(0), ReplicaHealth::Healthy);
    // The rebuilt replica serves bit-identically again.
    set.try_submit(request(2)).unwrap();
    set.try_submit(request(3)).unwrap();
    let done = set.run(&pool);
    for c in done {
        let i = c.inner.id as usize;
        assert_eq!(c.inner.tokens, solo_tokens(model(), PROMPTS[i], GEN));
    }
}

#[test]
fn exhausted_failover_budget_is_a_typed_rejection() {
    let pool = WorkStealingPool::new(2);
    let mut cfg = config();
    cfg.replicas = 1;
    cfg.retry = RetryPolicy {
        budget: 2,
        backoff_ms: 1,
        deadline_ms: 0,
    };
    let mut set = ReplicaSet::new(model(), cfg);
    // The only replica crashes every step it has work: each rejoin crashes
    // again, burning the budget until the request is rejected — typed,
    // never dropped.
    set.inject(ReplicaFaultSpec::persistent(0, ReplicaFaultKind::Crash, 0));
    set.try_submit(request(0)).unwrap();
    let done = set.run(&pool);
    assert_eq!(done.len(), 1, "rejected, not dropped");
    assert_eq!(
        done[0].inner.outcome,
        Outcome::Rejected(RejectReason::FailoverBudgetExhausted { failovers: 3 }),
    );
    assert_eq!(done[0].failovers, 3);
    assert!(set.stats().rejections >= 1);
}

#[test]
fn expired_deadline_is_a_typed_rejection() {
    let pool = WorkStealingPool::new(2);
    let mut cfg = config();
    cfg.replicas = 1;
    cfg.retry = RetryPolicy {
        budget: u32::MAX,
        backoff_ms: 4,
        deadline_ms: 1,
    };
    let mut set = ReplicaSet::new(model(), cfg);
    set.inject(ReplicaFaultSpec::persistent(0, ReplicaFaultKind::Crash, 0));
    set.try_submit(request(0)).unwrap();
    let done = set.run(&pool);
    assert_eq!(done.len(), 1);
    assert_eq!(
        done[0].inner.outcome,
        Outcome::Rejected(RejectReason::DeadlineExceeded),
        "deadline must beat an unbounded budget"
    );
}

#[test]
fn intermittent_crash_flaps_without_permanent_eviction() {
    let pool = WorkStealingPool::new(2);
    let mut set = ReplicaSet::new(model(), config());
    set.inject(ReplicaFaultSpec::new(
        0,
        ReplicaFaultKind::Crash,
        2,
        FaultDuration::Intermittent { period: 64 },
    ));
    for i in 0..4 {
        set.try_submit(request(i)).unwrap();
    }
    assert_all_identical(&mut set, &pool);
    // The replica crashed, rebuilt, and rejoined — still in rotation.
    assert_eq!(set.health(0), ReplicaHealth::Healthy);
    assert!(set.stats().rebuilds >= 1);
}
