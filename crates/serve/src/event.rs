//! The live serving event stream.
//!
//! Every decision the scheduler's recovery ladder takes — token accepted
//! (with the step's merged [`StepReport`]), rollback, KV repair, eviction,
//! completion — can be mirrored onto an [`EventSink`] as a [`ServeEvent`].
//! The sink is a plain `std::sync::mpsc` sender: emission is observation
//! only, never blocks the decode path, and silently drops events once the
//! receiver is gone, so attaching a sink cannot perturb token identity or
//! stall a lane. The web front end (`crate::web`) drains the receiving end
//! into Server-Sent Events; tests drain it directly.
//!
//! Events serialize to a stable hand-rolled JSON schema (documented in
//! DESIGN.md §3j and grepped by verify.sh): every object carries `"ev"`
//! (the kind tag), `"replica"`, and kind-specific fields. `block_hits` is
//! sparse — `[[block, hits], ...]` — so clean steps stay tiny on the wire.

use ft2_model::hooks::{AnomalyVerdict, StepReport};
use std::sync::mpsc::{Receiver, Sender};

/// One observable serving-runtime event.
#[derive(Clone, Debug)]
pub enum ServeEvent {
    /// A request left the queue and entered a lane (`resumed` tokens were
    /// replayed from a handoff prefix; 0 for fresh admissions).
    Admitted {
        /// Replica that admitted the request.
        replica: usize,
        /// Request id.
        id: u64,
        /// Handoff-prefix tokens replayed at admission.
        resumed: usize,
    },
    /// A token was accepted by the recovery ladder.
    Token {
        /// Replica that decoded the token.
        replica: usize,
        /// Request id.
        id: u64,
        /// Generation step (0 = prefill/first token).
        step: usize,
        /// The accepted token id.
        token: u32,
        /// The step's merged tap report (verdict, correction counts,
        /// per-block hits).
        report: StepReport,
        /// Nanoseconds from admission to acceptance.
        t_ns: u64,
    },
    /// A storming step was rolled back for re-decode. Carries the
    /// detecting step's report — the rolled-back token is never accepted
    /// (and so never emits a [`ServeEvent::Token`]), so this marker is
    /// where the stream learns *which blocks* a recovered fault struck.
    Rollback {
        /// Replica running the lane.
        replica: usize,
        /// Request id.
        id: u64,
        /// The step being re-decoded.
        step: usize,
        /// 0-based re-decode attempt.
        attempt: u32,
        /// The storming step's merged tap report (verdict, correction
        /// counts, per-block hits — the detection attribution).
        report: StepReport,
    },
    /// The repair rung rebuilt corrupted KV positions.
    Repair {
        /// Replica running the lane.
        replica: usize,
        /// Request id.
        id: u64,
        /// The step whose retry budget triggered the rung.
        step: usize,
        /// KV positions rebuilt from replay.
        positions: usize,
    },
    /// A request was evicted with its ladder exhausted.
    Evicted {
        /// Replica that evicted the request.
        replica: usize,
        /// Request id.
        id: u64,
        /// The step that could not be decoded cleanly.
        step: usize,
        /// Rollbacks spent on that step.
        redecodes: u32,
    },
    /// A request reached a terminal outcome.
    Completed {
        /// Replica that finished the request.
        replica: usize,
        /// Request id.
        id: u64,
        /// Terminal outcome, as a short string (`"Completed"`,
        /// `"Evicted"`, `"Rejected"`).
        outcome: &'static str,
        /// Accepted tokens.
        tokens: usize,
        /// Rollbacks across the request's lifetime.
        rollbacks: u32,
        /// Storm-verdict steps across the request's lifetime.
        storms: u32,
    },
    /// A replica health transition (emitted by the harness poll loop).
    Health {
        /// The replica whose state changed.
        replica: usize,
        /// New state, as the `Health` debug string (`"Healthy"`,
        /// `"Suspect"`, `"Quarantined"`, `"Rebuilding"`).
        state: String,
    },
    /// A fault was injected via the live control endpoint.
    Inject {
        /// Replica targeted (the submitting replica for request-scoped
        /// faults).
        replica: usize,
        /// Short description of the fault (`"flip block 2"`, ...).
        what: String,
    },
    /// The stream is closing (graceful drain) — always the final event.
    Shutdown,
}

fn verdict_str(v: AnomalyVerdict) -> &'static str {
    match v {
        AnomalyVerdict::Clean => "Clean",
        AnomalyVerdict::Corrected => "Corrected",
        AnomalyVerdict::Storm => "Storm",
    }
}

fn block_hits_json(report: &StepReport) -> String {
    let mut s = String::from("[");
    for (i, (b, h)) in report.hit_blocks().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("[{b},{h}]"));
    }
    s.push(']');
    s
}

impl ServeEvent {
    /// The SSE `event:` kind tag.
    pub fn kind(&self) -> &'static str {
        match self {
            ServeEvent::Admitted { .. } => "admitted",
            ServeEvent::Token { .. } => "token",
            ServeEvent::Rollback { .. } => "rollback",
            ServeEvent::Repair { .. } => "repair",
            ServeEvent::Evicted { .. } => "evicted",
            ServeEvent::Completed { .. } => "completed",
            ServeEvent::Health { .. } => "health",
            ServeEvent::Inject { .. } => "inject",
            ServeEvent::Shutdown => "shutdown",
        }
    }

    /// Stable one-line JSON payload (the SSE `data:` line).
    pub fn to_json(&self) -> String {
        match self {
            ServeEvent::Admitted { replica, id, resumed } => format!(
                r#"{{"ev":"admitted","replica":{replica},"id":{id},"resumed":{resumed}}}"#
            ),
            ServeEvent::Token {
                replica,
                id,
                step,
                token,
                report,
                t_ns,
            } => format!(
                concat!(
                    r#"{{"ev":"token","replica":{},"id":{},"step":{},"token":{},"#,
                    r#""verdict":"{}","clamps":{},"nans":{},"block_hits":{},"t_ns":{}}}"#
                ),
                replica,
                id,
                step,
                token,
                verdict_str(report.verdict),
                report.clamps,
                report.nans,
                block_hits_json(report),
                t_ns
            ),
            ServeEvent::Rollback {
                replica,
                id,
                step,
                attempt,
                report,
            } => format!(
                concat!(
                    r#"{{"ev":"rollback","replica":{},"id":{},"step":{},"attempt":{},"#,
                    r#""verdict":"{}","clamps":{},"nans":{},"block_hits":{}}}"#
                ),
                replica,
                id,
                step,
                attempt,
                verdict_str(report.verdict),
                report.clamps,
                report.nans,
                block_hits_json(report)
            ),
            ServeEvent::Repair {
                replica,
                id,
                step,
                positions,
            } => format!(
                r#"{{"ev":"repair","replica":{replica},"id":{id},"step":{step},"positions":{positions}}}"#
            ),
            ServeEvent::Evicted {
                replica,
                id,
                step,
                redecodes,
            } => format!(
                r#"{{"ev":"evicted","replica":{replica},"id":{id},"step":{step},"redecodes":{redecodes}}}"#
            ),
            ServeEvent::Completed {
                replica,
                id,
                outcome,
                tokens,
                rollbacks,
                storms,
            } => format!(
                concat!(
                    r#"{{"ev":"completed","replica":{},"id":{},"outcome":"{}","#,
                    r#""tokens":{},"rollbacks":{},"storms":{}}}"#
                ),
                replica, id, outcome, tokens, rollbacks, storms
            ),
            ServeEvent::Health { replica, state } => format!(
                r#"{{"ev":"health","replica":{replica},"state":"{state}"}}"#
            ),
            ServeEvent::Inject { replica, what } => format!(
                r#"{{"ev":"inject","replica":{replica},"what":"{what}"}}"#
            ),
            ServeEvent::Shutdown => r#"{"ev":"shutdown"}"#.to_string(),
        }
    }
}

/// A cloneable, replica-tagged handle for emitting [`ServeEvent`]s.
///
/// Wraps an `mpsc::Sender`; emission never blocks and never fails loudly —
/// a disconnected receiver turns `emit` into a no-op, so instrumented
/// schedulers outlive their observers without care.
#[derive(Clone)]
pub struct EventSink {
    tx: Sender<ServeEvent>,
    replica: usize,
}

impl EventSink {
    /// A sink feeding `tx`, tagged as replica 0.
    pub fn new(tx: Sender<ServeEvent>) -> EventSink {
        EventSink { tx, replica: 0 }
    }

    /// A sink + receiver pair (convenience for tests and the web harness).
    pub fn channel() -> (EventSink, Receiver<ServeEvent>) {
        let (tx, rx) = std::sync::mpsc::channel();
        (EventSink::new(tx), rx)
    }

    /// The same sink tagged with a different replica index.
    pub fn for_replica(&self, replica: usize) -> EventSink {
        EventSink {
            tx: self.tx.clone(),
            replica,
        }
    }

    /// The replica tag stamped on emitted events.
    pub fn replica(&self) -> usize {
        self.replica
    }

    /// Emit an event (best-effort; a gone receiver drops it silently).
    pub fn emit(&self, ev: ServeEvent) {
        let _ = self.tx.send(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_event_json_is_stable_and_sparse() {
        let mut report = StepReport {
            clamps: 2,
            nans: 1,
            verdict: AnomalyVerdict::Storm,
            ..StepReport::default()
        };
        report.record_block_hit(2);
        report.record_block_hit(2);
        report.record_block_hit(5);
        let ev = ServeEvent::Token {
            replica: 1,
            id: 7,
            step: 3,
            token: 42,
            report,
            t_ns: 1_000,
        };
        assert_eq!(ev.kind(), "token");
        assert_eq!(
            ev.to_json(),
            r#"{"ev":"token","replica":1,"id":7,"step":3,"token":42,"verdict":"Storm","clamps":2,"nans":1,"block_hits":[[2,2],[5,1]],"t_ns":1000}"#
        );
    }

    #[test]
    fn rollback_event_carries_detection_attribution() {
        let mut report = StepReport {
            verdict: AnomalyVerdict::Storm,
            ..StepReport::default()
        };
        report.record_block_hit(2);
        let ev = ServeEvent::Rollback {
            replica: 0,
            id: 3,
            step: 5,
            attempt: 1,
            report,
        };
        assert_eq!(
            ev.to_json(),
            r#"{"ev":"rollback","replica":0,"id":3,"step":5,"attempt":1,"verdict":"Storm","clamps":0,"nans":0,"block_hits":[[2,1]]}"#
        );
    }

    #[test]
    fn clean_token_event_has_empty_block_hits() {
        let ev = ServeEvent::Token {
            replica: 0,
            id: 1,
            step: 0,
            token: 9,
            report: StepReport::default(),
            t_ns: 5,
        };
        assert!(ev.to_json().contains(r#""block_hits":[]"#));
        assert!(ev.to_json().contains(r#""verdict":"Clean""#));
    }

    #[test]
    fn marker_events_serialize_their_kind_tags() {
        let cases: Vec<(ServeEvent, &str)> = vec![
            (
                ServeEvent::Rollback {
                    replica: 0,
                    id: 1,
                    step: 4,
                    attempt: 0,
                    report: StepReport::default(),
                },
                "rollback",
            ),
            (
                ServeEvent::Repair {
                    replica: 0,
                    id: 1,
                    step: 4,
                    positions: 3,
                },
                "repair",
            ),
            (
                ServeEvent::Evicted {
                    replica: 0,
                    id: 1,
                    step: 4,
                    redecodes: 3,
                },
                "evicted",
            ),
            (
                ServeEvent::Health {
                    replica: 2,
                    state: "Quarantined".to_string(),
                },
                "health",
            ),
            (ServeEvent::Shutdown, "shutdown"),
        ];
        for (ev, kind) in cases {
            assert_eq!(ev.kind(), kind);
            assert!(ev.to_json().contains(&format!(r#""ev":"{kind}""#)));
        }
    }

    #[test]
    fn sink_tags_replica_and_survives_dropped_receiver() {
        let (sink, rx) = EventSink::channel();
        let sink1 = sink.for_replica(1);
        assert_eq!(sink1.replica(), 1);
        sink1.emit(ServeEvent::Shutdown);
        assert!(matches!(rx.recv().unwrap(), ServeEvent::Shutdown));
        drop(rx);
        sink1.emit(ServeEvent::Shutdown); // must not panic or block
    }
}
