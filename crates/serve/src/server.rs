//! A threaded front door over the scheduler: callers submit requests from
//! any thread; one worker thread owns the [`Scheduler`] and its
//! [`WorkStealingPool`] and continuously batches decode steps.
//!
//! The split keeps all engine state single-owner (no locks on the decode
//! hot path): the shared mutex guards only the admission queue and the
//! completion list, both touched once per scheduler step. Admission
//! control is enforced here — a full queue rejects the submission
//! immediately with [`SubmitError::QueueFull`] rather than blocking the
//! caller, so backpressure is visible to the submitter.
//!
//! Shutdown is a *graceful drain*: in-flight requests finish normally,
//! every queued request is returned as a typed
//! [`Outcome::Rejected`]`(`[`RejectReason::Shutdown`]`)` completion
//! (never silently dropped), new submissions are refused with
//! [`SubmitError::ShuttingDown`], and the worker thread — plus the decode
//! pool it owns — is joined, so repeated start/stop cycles leak no
//! threads.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use crate::scheduler::{
    Completion, Outcome, RejectReason, Request, Scheduler, ServeConfig, SubmitError,
};
use ft2_model::hooks::LayerTap;
use ft2_model::Model;
use ft2_parallel::{lock_clean, wait_clean, WorkStealingPool};

struct State {
    pending: VecDeque<Request>,
    done: Vec<Completion>,
    shutdown: bool,
    submitted: u64,
    completed: u64,
}

struct Shared {
    state: Mutex<State>,
    cv: Condvar,
    queue_depth: usize,
}

/// A typed shutdown rejection for a request that never reached the
/// scheduler.
fn rejection(req: Request) -> Completion {
    Completion {
        id: req.id,
        outcome: Outcome::Rejected(RejectReason::Shutdown),
        tokens: Vec::new(),
        rollbacks: 0,
        storms: 0,
        kv_repairs: 0,
        repair_retries: 0,
        token_ns: Vec::new(),
    }
}

/// Handle to a running serving worker. Dropping the server performs the
/// same graceful drain as [`Server::shutdown`] (minus returning the
/// completions).
pub struct Server {
    shared: Arc<Shared>,
    model: Arc<Model>,
    next_id: AtomicU64,
    worker: Option<JoinHandle<()>>,
}

impl Server {
    /// Spawn the worker thread: it owns a [`Scheduler`] over `model` and a
    /// decode pool of `threads` workers.
    pub fn spawn(model: Arc<Model>, config: ServeConfig, threads: usize) -> Server {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                pending: VecDeque::new(),
                done: Vec::new(),
                shutdown: false,
                submitted: 0,
                completed: 0,
            }),
            cv: Condvar::new(),
            queue_depth: config.queue_depth,
        });
        let worker_shared = Arc::clone(&shared);
        let worker_model = Arc::clone(&model);
        let worker = std::thread::spawn(move || {
            // The server's mutex is the admission bound; the inner queue
            // only ever holds what one drain admitted.
            let inner = ServeConfig {
                queue_depth: usize::MAX,
                ..config
            };
            let pool = WorkStealingPool::new(threads);
            let mut sched = Scheduler::new(worker_model, inner);
            loop {
                let mut rejected: Vec<Completion> = Vec::new();
                let draining;
                {
                    let mut st = lock_clean(&worker_shared.state);
                    while st.pending.is_empty() && !st.shutdown && sched.is_idle() {
                        st = wait_clean(&worker_shared.cv, st);
                    }
                    draining = st.shutdown;
                    if draining {
                        // Graceful drain: stop admitting; everything still
                        // pending gets a typed rejection.
                        for req in st.pending.drain(..) {
                            rejected.push(rejection(req));
                        }
                    } else {
                        for req in st.pending.drain(..) {
                            // Submissions were validated on the caller's
                            // side and the inner queue is unbounded.
                            let admitted = sched.try_submit(req);
                            debug_assert!(admitted.is_ok(), "pre-validated request rejected");
                        }
                    }
                }
                if draining {
                    // Admitted-but-not-active requests are rejected too;
                    // active lanes keep decoding until they finish.
                    sched.drain_queue_rejected(RejectReason::Shutdown);
                }
                sched.step(&pool);
                let mut done = sched.drain_completions();
                done.append(&mut rejected);
                if !done.is_empty() {
                    let mut st = lock_clean(&worker_shared.state);
                    st.completed += done.len() as u64;
                    st.done.extend(done);
                    worker_shared.cv.notify_all();
                }
                if draining && sched.is_idle() {
                    break;
                }
            }
        });
        Server {
            shared,
            model,
            next_id: AtomicU64::new(0),
            worker: Some(worker),
        }
    }

    /// Submit a request; returns its id, or the admission error when the
    /// prompt is invalid, the queue is full (backpressure — resubmit
    /// later), or the server is draining.
    pub fn submit(
        &self,
        prompt: Vec<u32>,
        gen_tokens: usize,
        tap: Option<Box<dyn LayerTap + Send>>,
    ) -> Result<u64, SubmitError> {
        if prompt.is_empty() {
            return Err(SubmitError::EmptyPrompt);
        }
        let requested = prompt.len() + gen_tokens;
        let max_seq = self.model.config().max_seq;
        if requested > max_seq {
            return Err(SubmitError::TooLong { requested, max_seq });
        }
        let mut st = lock_clean(&self.shared.state);
        if st.shutdown {
            return Err(SubmitError::ShuttingDown);
        }
        if st.pending.len() >= self.shared.queue_depth {
            return Err(SubmitError::QueueFull);
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        st.pending.push_back(Request {
            id,
            prompt,
            gen_tokens,
            tap,
        });
        st.submitted += 1;
        drop(st);
        self.shared.cv.notify_all();
        Ok(id)
    }

    /// Block until every submitted request has completed, been evicted,
    /// or been rejected, then drain and return the completions.
    pub fn wait_all(&self) -> Vec<Completion> {
        let mut st = lock_clean(&self.shared.state);
        while st.completed < st.submitted {
            st = wait_clean(&self.shared.cv, st);
        }
        std::mem::take(&mut st.done)
    }

    /// Gracefully drain and join the worker, returning every completion
    /// not yet collected with [`Server::wait_all`] — typed shutdown
    /// rejections included, so callers can account for every submitted
    /// request.
    pub fn shutdown(mut self) -> Vec<Completion> {
        self.stop();
        let mut st = lock_clean(&self.shared.state);
        std::mem::take(&mut st.done)
    }

    fn stop(&mut self) {
        {
            let mut st = lock_clean(&self.shared.state);
            st.shutdown = true;
        }
        self.shared.cv.notify_all();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}
