//! Cross-replica failover: health-gated routing, zero-token-loss handoff,
//! and live replica rebuild.
//!
//! The per-request recovery ladder ([`crate::scheduler`]) and the sharded
//! executor's shard isolation handle faults *inside* one serving process.
//! This module adds the rung above the process: a [`ReplicaSet`] runs N
//! independent replicas of the model — each with its own [`Scheduler`] and
//! KV arena — behind a health-aware router, so a replica that crashes,
//! hangs, or degenerates into an activation storm is taken out of rotation
//! while its in-flight requests continue on a survivor.
//!
//! **Health state machine.** Each replica walks
//! `Healthy → Suspect → Quarantined → Rebuilding → Healthy`:
//!
//! ```text
//!            eviction                 breaker trips
//!  Healthy ────────────▶ Suspect ───────────────────▶ Quarantined
//!     ▲                     │                              │
//!     │   clean streak      │      crash / hang            │ begin
//!     └─────────────────────┘  (panic or watchdog abort    │ rebuild
//!     ▲                         jumps straight here) ──────┤
//!     │          rejoin                                    ▼
//!     └──────────────────────────────────────────── Rebuilding
//!                                              (incremental weight sweep)
//! ```
//!
//! Liveness is detected by the *same* [`HeartbeatMonitor`] that guards
//! sharded execution — one monitor, one slot per replica, no second
//! watchdog: a hung replica step stops beating, the monitor cancels the
//! stale slot, and the step aborts with a typed
//! [`ft2_fault::ReplicaHangAbort`] panic the router downcasts to classify
//! the failure. Degenerate replicas (every request storms) are caught by an
//! error-rate circuit breaker: *consecutive* evictions trip quarantine, so
//! a replica that merely flaps (error, clean, error, clean …) is demoted to
//! `Suspect` but never quarantined — the consecutive counter resets on
//! every clean completion.
//!
//! **Zero-token-loss handoff.** The scheduler appends a token only *after*
//! the decode step and recovery ladder accept it, so a panic mid-step
//! leaves every in-flight request with its exact accepted-token prefix.
//! Failover re-admits that prefix on a survivor via
//! [`Scheduler::try_resume`], which rebuilds KV by the same replay shape
//! that produced the rows originally (joint prompt prefill plus one
//! single-token step per accepted token) — so the continuation is
//! **bit-identical** to the request's solo generation. No accepted token is
//! ever lost or re-derived differently.
//!
//! **Retry policy.** Failovers are typed and budgeted: each re-route burns
//! one unit of the per-request [`RetryPolicy`] budget and waits out a
//! deterministic jittered exponential backoff; a request that exhausts its
//! budget or its deadline completes with [`Outcome::Rejected`] — never a
//! silent drop.
//!
//! **Live rebuild.** A quarantined replica rebuilds in place: the router
//! sweeps a budget of weight tiles per tick against the golden copy
//! ([`WeightChecksums::sweep`]) while survivors keep serving, then stamps a
//! fresh scheduler from the verified weights and rejoins the replica.
//! Rebuild touches only weights (the KV of a dead replica is discarded —
//! survivors re-prefill), so it is far cheaper than a full restart.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ft2_core::WeightChecksums;
use ft2_fault::{ReplicaFaultKind, ReplicaFaultSpec, ReplicaHangAbort};
use ft2_model::weights::ModelWeights;
use ft2_model::Model;
use ft2_parallel::{catch_quiet, HeartbeatMonitor, WorkStealingPool};

use crate::event::EventSink;
use crate::scheduler::{
    Completion, Outcome, RejectReason, Request, Scheduler, ServeConfig, SubmitError,
};
use crate::storm::StormTap;

/// Cross-replica retry policy: how many failovers a request may spend, how
/// long to back off between them, and an optional end-to-end deadline.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Maximum failovers per request; the next one completes the request
    /// with [`RejectReason::FailoverBudgetExhausted`].
    pub budget: u32,
    /// Base backoff in milliseconds; attempt `k` waits
    /// `backoff_ms · 2^(k-1)` plus a deterministic jitter below one base
    /// unit, so retries from different requests de-synchronise without any
    /// global randomness.
    pub backoff_ms: u64,
    /// End-to-end deadline in milliseconds from submission; `0` disables.
    /// A request past its deadline at re-route time completes with
    /// [`RejectReason::DeadlineExceeded`].
    pub deadline_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            budget: 3,
            backoff_ms: 1,
            deadline_ms: 0,
        }
    }
}

/// SplitMix64 — the standard 64-bit mix, used for deterministic backoff
/// jitter keyed on (request id, attempt).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl RetryPolicy {
    /// Backoff before failover attempt `attempt` (1-based) of request
    /// `id`. Deterministic: the same (id, attempt) always waits the same
    /// jittered exponential delay.
    pub fn backoff(&self, id: u64, attempt: u32) -> Duration {
        let shift = u64::from(attempt.saturating_sub(1)).min(6);
        let base = self.backoff_ms.saturating_mul(1u64 << shift);
        let jitter = splitmix64(id ^ (u64::from(attempt) << 32)) % self.backoff_ms.max(1);
        Duration::from_millis(base.saturating_add(jitter))
    }
}

/// Health state of one replica.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplicaHealth {
    /// Serving; the router prefers healthy replicas.
    Healthy,
    /// Serving, but its last completion was an error; routed to only when
    /// no healthy replica has capacity. A clean streak promotes it back.
    Suspect,
    /// Out of rotation after a crash, hang, or breaker trip; in-flight
    /// work has been failed over. Rebuild begins on the next tick.
    Quarantined,
    /// Verifying its weights against the golden copy, a tile budget per
    /// tick; rejoins as `Healthy` once the sweep covers the table.
    Rebuilding,
}

/// Per-replica health tracker: the state machine plus the consecutive-error
/// circuit breaker. Flap suppression is structural — the consecutive
/// counter resets on every clean completion, so alternating error/clean
/// sequences never accumulate toward the quarantine threshold.
#[derive(Clone, Copy, Debug)]
pub struct HealthTracker {
    state: ReplicaHealth,
    consecutive_errs: u32,
    clean_streak: u32,
    /// Consecutive errors that trip quarantine.
    quarantine_errs: u32,
    /// Clean completions that promote `Suspect` back to `Healthy`.
    promote_streak: u32,
}

impl HealthTracker {
    /// New tracker, `Healthy`, tripping after `quarantine_errs`
    /// consecutive errors (clamped to at least 1).
    pub fn new(quarantine_errs: u32) -> HealthTracker {
        HealthTracker {
            state: ReplicaHealth::Healthy,
            consecutive_errs: 0,
            clean_streak: 0,
            quarantine_errs: quarantine_errs.max(1),
            promote_streak: 2,
        }
    }

    /// Current health state.
    pub fn state(&self) -> ReplicaHealth {
        self.state
    }

    /// Is the replica in rotation (routable)?
    pub fn serving(&self) -> bool {
        matches!(self.state, ReplicaHealth::Healthy | ReplicaHealth::Suspect)
    }

    /// Record an errored completion. Returns `true` when the breaker trips
    /// (the replica must be quarantined). No-op off rotation.
    pub fn record_error(&mut self) -> bool {
        if !self.serving() {
            return false;
        }
        self.clean_streak = 0;
        self.consecutive_errs += 1;
        if self.consecutive_errs >= self.quarantine_errs {
            self.state = ReplicaHealth::Quarantined;
            true
        } else {
            self.state = ReplicaHealth::Suspect;
            false
        }
    }

    /// Record a clean completion: resets the breaker (flap suppression)
    /// and promotes a `Suspect` replica after a clean streak.
    pub fn record_clean(&mut self) {
        if !self.serving() {
            return;
        }
        self.consecutive_errs = 0;
        self.clean_streak += 1;
        if self.state == ReplicaHealth::Suspect && self.clean_streak >= self.promote_streak {
            self.state = ReplicaHealth::Healthy;
        }
    }

    /// Quarantine unconditionally (crash or watchdog abort — no vote).
    pub fn force_quarantine(&mut self) {
        self.state = ReplicaHealth::Quarantined;
        self.consecutive_errs = 0;
        self.clean_streak = 0;
    }

    /// Quarantined → Rebuilding.
    pub fn begin_rebuild(&mut self) {
        self.state = ReplicaHealth::Rebuilding;
    }

    /// Rebuilding → Healthy with a clean slate.
    pub fn rejoin(&mut self) {
        self.state = ReplicaHealth::Healthy;
        self.consecutive_errs = 0;
        self.clean_streak = 0;
    }
}

/// Replica-set configuration (knobs `FT2_REPLICAS`,
/// `FT2_REPLICA_RETRY_BUDGET`, `FT2_REPLICA_BACKOFF_MS`, and
/// `FT2_REPLICA_QUARANTINE_ERRS` feed the obvious fields).
#[derive(Clone, Debug)]
pub struct ReplicaConfig {
    /// Number of replicas.
    pub replicas: usize,
    /// Per-request cross-replica retry policy.
    pub retry: RetryPolicy,
    /// Consecutive errored completions that trip a replica's breaker.
    pub quarantine_errs: u32,
    /// Per-replica scheduler configuration.
    pub inner: ServeConfig,
    /// Stale-heartbeat timeout for the hang watchdog; [`Duration::ZERO`]
    /// disables it (hang injection then degrades to an immediate abort, so
    /// it stays bounded).
    pub heartbeat: Duration,
    /// Weight tiles verified per rebuild tick (clamped to at least 1).
    pub rebuild_budget: usize,
}

impl Default for ReplicaConfig {
    fn default() -> ReplicaConfig {
        ReplicaConfig {
            replicas: 2,
            retry: RetryPolicy::default(),
            quarantine_errs: 3,
            inner: ServeConfig::default(),
            heartbeat: Duration::from_millis(20),
            rebuild_budget: 64,
        }
    }
}

/// Aggregate counters across the replica set's lifetime.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReplicaSetStats {
    /// Request re-routes (each carries its accepted prefix to a survivor).
    pub failovers: u64,
    /// Accepted tokens carried across failovers (never lost).
    pub handoff_tokens: u64,
    /// Replica crashes caught (panic mid-step).
    pub crashes: u64,
    /// Replica hangs aborted by the heartbeat watchdog.
    pub hangs: u64,
    /// Breaker trips plus forced quarantines.
    pub quarantines: u64,
    /// Completed rebuild-and-rejoin cycles.
    pub rebuilds: u64,
    /// Weight tiles verified by rebuild sweeps.
    pub tiles_checked: u64,
    /// Weight tiles restored from the golden copy.
    pub tiles_repaired: u64,
    /// Evictions attributed to a storming replica and retried elsewhere.
    pub storm_evictions: u64,
    /// Requests completed with a typed rejection (budget or deadline).
    pub rejections: u64,
}

/// A completion annotated with its failover history.
#[derive(Clone, Debug)]
pub struct ReplicaCompletion {
    /// The scheduler-level completion.
    pub inner: Completion,
    /// Failovers the request survived (0 = served by one replica).
    pub failovers: u32,
    /// Replica that finished (or rejected) the request.
    pub replica: usize,
}

/// Router-side record of a routed request — everything needed to re-route
/// it after an eviction (a [`Completion`] carries no prompt) and to enforce
/// the retry budget and deadline.
struct RouteMeta {
    prompt: Vec<u32>,
    gen_tokens: usize,
    failovers: u32,
    submitted_at: Instant,
    /// The router injected a storm tap (degenerate-replica drill): its
    /// eviction is the replica's fault and is retried tap-less elsewhere.
    storm_injected: bool,
}

/// A re-route waiting out its backoff.
struct PendingRoute {
    req: Request,
    accepted: Vec<u32>,
    not_before: Instant,
}

/// One replica: an independent model instance and scheduler, plus health.
struct Replica {
    model: Arc<Model>,
    sched: Option<Scheduler>,
    health: HealthTracker,
    steps: u64,
    rebuild_cursor: usize,
}

/// N model replicas behind a health-aware failover router. See the module
/// docs for the full contract.
pub struct ReplicaSet {
    replicas: Vec<Replica>,
    golden: Arc<Model>,
    checksums: WeightChecksums,
    config: ReplicaConfig,
    monitor: HeartbeatMonitor,
    faults: Vec<ReplicaFaultSpec>,
    meta: BTreeMap<u64, RouteMeta>,
    pending: VecDeque<PendingRoute>,
    done: Vec<ReplicaCompletion>,
    stats: ReplicaSetStats,
    /// Optional observation stream: each replica's scheduler gets the sink
    /// tagged with its index, and rebuilt schedulers are re-attached.
    sink: Option<EventSink>,
}

impl ReplicaSet {
    /// Build a replica set by stamping `config.replicas` bit-identical
    /// copies of `prototype` (plus one golden copy the rebuild sweep
    /// repairs from). At least one replica is always created.
    pub fn new(prototype: &Model, config: ReplicaConfig) -> ReplicaSet {
        let n = config.replicas.max(1);
        let golden = Arc::new(prototype.clone());
        let checksums = WeightChecksums::build(golden.config(), golden.weights());
        let monitor = HeartbeatMonitor::spawn(n, config.heartbeat);
        let replicas = (0..n)
            .map(|_| {
                let model = Arc::new(prototype.clone());
                let sched = Scheduler::new(Arc::clone(&model), config.inner.clone());
                Replica {
                    model,
                    sched: Some(sched),
                    health: HealthTracker::new(config.quarantine_errs),
                    steps: 0,
                    rebuild_cursor: 0,
                }
            })
            .collect();
        ReplicaSet {
            replicas,
            golden,
            checksums,
            config,
            monitor,
            faults: Vec::new(),
            meta: BTreeMap::new(),
            pending: VecDeque::new(),
            done: Vec::new(),
            stats: ReplicaSetStats::default(),
            sink: None,
        }
    }

    /// Mirror every replica's ladder decisions onto `sink`, tagged with
    /// the replica index. Schedulers stamped later (rebuild rejoin) are
    /// attached automatically. Observation only — serving behaviour and
    /// token identity are unchanged.
    pub fn set_event_sink(&mut self, sink: EventSink) {
        for (r, rep) in self.replicas.iter_mut().enumerate() {
            if let Some(sched) = rep.sched.as_mut() {
                sched.set_event_sink(sink.for_replica(r));
            }
        }
        self.sink = Some(sink);
    }

    /// Decode steps replica `r` has taken (fault specs are keyed on this
    /// replica-local counter; live injection reads it to strike "now").
    pub fn replica_steps(&self, r: usize) -> u64 {
        self.replicas[r].steps
    }

    /// Number of replicas.
    pub fn replicas(&self) -> usize {
        self.replicas.len()
    }

    /// Health state of replica `r`.
    pub fn health(&self, r: usize) -> ReplicaHealth {
        self.replicas[r].health.state()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> &ReplicaSetStats {
        &self.stats
    }

    /// Is the hang watchdog armed? `false` when a zero heartbeat timeout
    /// disabled it.
    pub fn watchdog_armed(&self) -> bool {
        self.monitor.armed()
    }

    /// Schedule a replica-level fault (test / bench injection).
    pub fn inject(&mut self, fault: ReplicaFaultSpec) {
        self.faults.push(fault);
    }

    /// Mutate replica `r`'s live weights — only while it is out of
    /// rotation (quarantined or rebuilding), when no scheduler holds its
    /// model. Returns `None` (untouched) otherwise. Fault drills corrupt
    /// tiles through this before the rebuild sweep runs.
    pub fn with_replica_weights<T>(
        &mut self,
        r: usize,
        f: impl FnOnce(&mut ModelWeights) -> T,
    ) -> Option<T> {
        let rep = &mut self.replicas[r];
        if rep.sched.is_some() {
            return None;
        }
        Arc::get_mut(&mut rep.model).map(|m| f(m.weights_mut()))
    }

    /// Force replica `r` out of rotation, failing over its work (tests and
    /// operational drain use this; faults arrive here via injection).
    pub fn quarantine(&mut self, r: usize) {
        if !self.replicas[r].health.serving() {
            return;
        }
        self.replicas[r].health.force_quarantine();
        self.stats.quarantines += 1;
        self.fail_over(r);
    }

    /// Route a fresh request to the healthiest, least-loaded replica.
    /// Fails with [`SubmitError::QueueFull`] when no serving replica has
    /// queue capacity. Request ids must be unique across in-flight work.
    pub fn try_submit(&mut self, req: Request) -> Result<(), SubmitError> {
        let Some(target) = self.pick_replica() else {
            return Err(SubmitError::QueueFull);
        };
        self.meta.insert(
            req.id,
            RouteMeta {
                prompt: req.prompt.clone(),
                gen_tokens: req.gen_tokens,
                failovers: 0,
                submitted_at: Instant::now(),
                storm_injected: false,
            },
        );
        let id = req.id;
        match self.route_to(target, req, Vec::new()) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.meta.remove(&id);
                Err(e)
            }
        }
    }

    /// Drain finished requests accumulated since the last call.
    pub fn drain_completions(&mut self) -> Vec<ReplicaCompletion> {
        std::mem::take(&mut self.done)
    }

    /// True when no routed, pending, or rebuilding work remains.
    pub fn is_idle(&self) -> bool {
        self.pending.is_empty()
            && self.meta.is_empty()
            && self
                .replicas
                .iter()
                .all(|rep| rep.health.serving() && rep.sched.as_ref().is_none_or(Scheduler::is_idle))
    }

    /// One router tick: flush due re-routes, advance every serving replica
    /// one scheduler step (catching crashes and hangs), sweep rebuilding
    /// replicas, and run the breaker over new completions. Returns `false`
    /// when the set is idle.
    pub fn step(&mut self, pool: &WorkStealingPool) -> bool {
        if self.is_idle() {
            return false;
        }
        self.flush_pending();
        for r in 0..self.replicas.len() {
            match self.replicas[r].health.state() {
                ReplicaHealth::Quarantined => {
                    self.replicas[r].health.begin_rebuild();
                    self.replicas[r].rebuild_cursor = 0;
                }
                ReplicaHealth::Rebuilding => self.rebuild_tick(r),
                ReplicaHealth::Healthy | ReplicaHealth::Suspect => self.step_replica(r, pool),
            }
        }
        // Only backoff timers left: yield briefly instead of hot-spinning.
        if self.replicas.iter().all(|rep| {
            !matches!(rep.health.state(), ReplicaHealth::Rebuilding)
                && rep.sched.as_ref().is_none_or(Scheduler::is_idle)
        }) && !self.pending.is_empty()
        {
            std::thread::sleep(Duration::from_micros(200));
        }
        true
    }

    /// Run until idle (every request completed or rejected, every replica
    /// rebuilt and rejoined), returning all completions in finish order.
    pub fn run(&mut self, pool: &WorkStealingPool) -> Vec<ReplicaCompletion> {
        while self.step(pool) {}
        self.drain_completions()
    }

    /// Serving replica with the most free queue+batch capacity, healthy
    /// before suspect.
    fn pick_replica(&self) -> Option<usize> {
        let load = |rep: &Replica| {
            let s = rep.sched.as_ref().expect("serving replica has a scheduler");
            s.queued() + s.active()
        };
        let best = |state: ReplicaHealth| {
            self.replicas
                .iter()
                .enumerate()
                .filter(|(_, rep)| rep.health.state() == state && rep.sched.is_some())
                .min_by_key(|(_, rep)| load(rep))
                .map(|(r, _)| r)
        };
        best(ReplicaHealth::Healthy).or_else(|| best(ReplicaHealth::Suspect))
    }

    /// Is replica `r` currently under an activation-storm fault?
    fn storm_due(&self, r: usize) -> bool {
        let step = self.replicas[r].steps;
        self.faults
            .iter()
            .any(|f| f.kind == ReplicaFaultKind::ActStorm && f.due_at(r, step))
    }

    /// Admit `req` (with its accepted prefix) on replica `target`,
    /// injecting a storm tap when the target is under an ActStorm fault
    /// and the request is tap-less.
    fn route_to(
        &mut self,
        target: usize,
        mut req: Request,
        accepted: Vec<u32>,
    ) -> Result<(), SubmitError> {
        if req.tap.is_none() && self.storm_due(target) {
            let step = self.replicas[target].steps;
            for f in &mut self.faults {
                if f.kind == ReplicaFaultKind::ActStorm && f.strike_due(target, step) {
                    break;
                }
            }
            // Strike from step 1 on: the prefill token (step 0) stays
            // clean, so the accepted prefix carried off this replica is
            // never poisoned.
            req.tap = Some(Box::new(StormTap::persistent(1)));
            if let Some(m) = self.meta.get_mut(&req.id) {
                m.storm_injected = true;
            }
        }
        let sched = self.replicas[target]
            .sched
            .as_mut()
            .expect("routing to a replica without a scheduler");
        if accepted.is_empty() {
            sched.try_submit(req)
        } else {
            sched.try_resume(req, accepted)
        }
    }

    /// Complete a request at the router: emit its completion and drop its
    /// routing record.
    fn finish(&mut self, r: usize, c: Completion) {
        let failovers = self.meta.remove(&c.id).map_or(0, |m| m.failovers);
        self.done.push(ReplicaCompletion {
            inner: c,
            failovers,
            replica: r,
        });
    }

    /// Complete a request with a typed rejection, keeping its accepted
    /// prefix in the completion.
    fn reject(&mut self, r: usize, id: u64, tokens: Vec<u32>, reason: RejectReason) {
        self.stats.rejections += 1;
        self.finish(
            r,
            Completion {
                id,
                outcome: Outcome::Rejected(reason),
                tokens,
                rollbacks: 0,
                storms: 0,
                kv_repairs: 0,
                repair_retries: 0,
                token_ns: Vec::new(),
            },
        );
    }

    /// Queue a failover re-route for `req` with its accepted prefix,
    /// charging the retry budget and deadline. `from` is the replica the
    /// request is leaving (used only to label a rejection).
    fn reroute(&mut self, from: usize, req: Request, accepted: Vec<u32>) {
        let Some(meta) = self.meta.get_mut(&req.id) else {
            // Unknown id (never routed by us): drop with a typed outcome
            // rather than silently.
            self.reject(from, req.id, accepted, RejectReason::FailoverBudgetExhausted {
                failovers: 0,
            });
            return;
        };
        meta.failovers += 1;
        let failovers = meta.failovers;
        let elapsed = meta.submitted_at.elapsed();
        let policy = self.config.retry;
        if failovers > policy.budget {
            self.reject(
                from,
                req.id,
                accepted,
                RejectReason::FailoverBudgetExhausted { failovers },
            );
            return;
        }
        if policy.deadline_ms > 0 && elapsed > Duration::from_millis(policy.deadline_ms) {
            self.reject(from, req.id, accepted, RejectReason::DeadlineExceeded);
            return;
        }
        self.stats.failovers += 1;
        self.stats.handoff_tokens += accepted.len() as u64;
        let not_before = Instant::now() + policy.backoff(req.id, failovers);
        self.pending.push_back(PendingRoute {
            req,
            accepted,
            not_before,
        });
    }

    /// Admit every pending re-route whose backoff has elapsed, if a
    /// serving replica has capacity; the rest stay queued.
    fn flush_pending(&mut self) {
        let now = Instant::now();
        let mut still_waiting = VecDeque::new();
        while let Some(p) = self.pending.pop_front() {
            if p.not_before > now {
                still_waiting.push_back(p);
                continue;
            }
            let Some(target) = self.pick_replica() else {
                still_waiting.push_back(p);
                continue;
            };
            let PendingRoute { req, accepted, .. } = p;
            let id = req.id;
            if let Err(e) = self.route_to(target, req, accepted) {
                debug_assert_eq!(e, SubmitError::QueueFull, "re-route re-validation failed");
                // Rebuild the route from meta (the request was consumed)
                // and retry next tick without charging the budget.
                if let Some(m) = self.meta.get(&id) {
                    still_waiting.push_back(PendingRoute {
                        req: Request {
                            id,
                            prompt: m.prompt.clone(),
                            gen_tokens: m.gen_tokens,
                            tap: None,
                        },
                        accepted: Vec::new(),
                        not_before: now + Duration::from_millis(1),
                    });
                }
            }
        }
        self.pending = still_waiting;
    }

    /// Tear down replica `r`'s scheduler and re-route everything it held.
    /// Completions it had already produced survive verbatim; in-flight and
    /// queued requests carry their accepted prefixes to the backoff queue.
    /// Router-injected storm taps are stripped (the storm was the
    /// replica's fault, not the request's).
    fn fail_over(&mut self, r: usize) {
        let Some(sched) = self.replicas[r].sched.take() else {
            return;
        };
        let (inflight, done) = sched.into_failover();
        for c in done {
            self.settle(r, c);
        }
        for (mut req, accepted) in inflight {
            if self
                .meta
                .get_mut(&req.id)
                .is_some_and(|m| std::mem::take(&mut m.storm_injected))
            {
                req.tap = None;
            }
            self.reroute(r, req, accepted);
        }
    }

    /// Route one drained completion: clean completions and rejections are
    /// final; an eviction caused by a router-injected storm tap is the
    /// replica's fault and is retried tap-less on a survivor with the
    /// accepted prefix intact.
    fn settle(&mut self, r: usize, c: Completion) {
        match c.outcome {
            Outcome::Evicted(_)
                if self.meta.get(&c.id).is_some_and(|m| m.storm_injected) =>
            {
                self.stats.storm_evictions += 1;
                let m = self.meta.get_mut(&c.id).expect("checked above");
                m.storm_injected = false;
                let req = Request {
                    id: c.id,
                    prompt: m.prompt.clone(),
                    gen_tokens: m.gen_tokens,
                    tap: None,
                };
                self.reroute(r, req, c.tokens);
            }
            _ => self.finish(r, c),
        }
    }

    /// Advance replica `r` one scheduler step under the heartbeat and
    /// panic containment, then run the breaker over its completions.
    fn step_replica(&mut self, r: usize, pool: &WorkStealingPool) {
        let idle = self.replicas[r].sched.as_ref().is_none_or(Scheduler::is_idle);
        if idle {
            return;
        }
        let step = self.replicas[r].steps;
        self.replicas[r].steps += 1;
        let strike = self
            .faults
            .iter_mut()
            .filter(|f| f.kind != ReplicaFaultKind::ActStorm)
            .find_map(|f| f.strike_due(r, step).then_some(f.kind));
        let hb = self.monitor.state();
        let armed = self.monitor.armed();
        let sched = self.replicas[r].sched.as_mut().expect("checked non-idle");
        hb.begin(r);
        let result = catch_quiet(|| match strike {
            Some(ReplicaFaultKind::Crash) => panic!("injected replica crash"),
            Some(ReplicaFaultKind::Hang) => {
                // Cooperative hang: stop beating and wait for the monitor
                // to cancel the slot, exactly like a stuck kernel stream.
                // With the watchdog disabled, abort immediately so the
                // injection stays bounded.
                let t0 = Instant::now();
                while armed && !hb.is_cancelled(r) && t0.elapsed() < Duration::from_secs(2) {
                    std::thread::sleep(Duration::from_micros(100));
                }
                std::panic::panic_any(ReplicaHangAbort { replica: r });
            }
            _ => {
                sched.step(pool);
            }
        });
        hb.end(r);
        hb.reset(r);
        match result {
            Ok(()) => {
                let completions = self.replicas[r]
                    .sched
                    .as_mut()
                    .expect("scheduler survives a clean step")
                    .drain_completions();
                let mut tripped = false;
                for c in completions {
                    match c.outcome {
                        Outcome::Completed => self.replicas[r].health.record_clean(),
                        Outcome::Evicted(_) => tripped |= self.replicas[r].health.record_error(),
                        Outcome::Rejected(_) => {}
                    }
                    self.settle(r, c);
                }
                if tripped {
                    self.stats.quarantines += 1;
                    self.fail_over(r);
                }
            }
            Err(caught) => {
                if caught.payload.downcast_ref::<ReplicaHangAbort>().is_some() {
                    self.stats.hangs += 1;
                } else {
                    self.stats.crashes += 1;
                }
                self.replicas[r].health.force_quarantine();
                self.stats.quarantines += 1;
                self.fail_over(r);
            }
        }
    }

    /// One rebuild tick: verify (and repair from golden) a budget of
    /// weight tiles; once the cursor covers the table, stamp a fresh
    /// scheduler on the verified weights and rejoin.
    fn rebuild_tick(&mut self, r: usize) {
        let budget = self.config.rebuild_budget.max(1);
        let rep = &mut self.replicas[r];
        debug_assert!(rep.sched.is_none(), "rebuilding replica still scheduled");
        let live = Arc::get_mut(&mut rep.model)
            .expect("rebuilding replica's model must be uniquely held");
        let (checked, repaired) = self.checksums.sweep(
            rep.rebuild_cursor,
            budget,
            live.weights_mut(),
            self.golden.weights(),
        );
        rep.rebuild_cursor += checked;
        self.stats.tiles_checked += checked as u64;
        self.stats.tiles_repaired += repaired as u64;
        if rep.rebuild_cursor >= self.checksums.num_tiles() {
            let mut sched = Scheduler::new(Arc::clone(&rep.model), self.config.inner.clone());
            if let Some(sink) = &self.sink {
                sched.set_event_sink(sink.for_replica(r));
            }
            rep.sched = Some(sched);
            rep.health.rejoin();
            rep.rebuild_cursor = 0;
            self.stats.rebuilds += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breaker_trips_on_consecutive_errors_only() {
        let mut h = HealthTracker::new(3);
        assert_eq!(h.state(), ReplicaHealth::Healthy);
        assert!(!h.record_error());
        assert_eq!(h.state(), ReplicaHealth::Suspect);
        assert!(!h.record_error());
        assert!(h.record_error(), "third consecutive error trips");
        assert_eq!(h.state(), ReplicaHealth::Quarantined);
    }

    #[test]
    fn flapping_replica_is_never_quarantined() {
        let mut h = HealthTracker::new(2);
        for _ in 0..50 {
            assert!(!h.record_error(), "alternating errors must not trip");
            h.record_clean();
        }
        assert_ne!(h.state(), ReplicaHealth::Quarantined);
    }

    #[test]
    fn clean_streak_promotes_suspect_back_to_healthy() {
        let mut h = HealthTracker::new(5);
        h.record_error();
        assert_eq!(h.state(), ReplicaHealth::Suspect);
        h.record_clean();
        assert_eq!(h.state(), ReplicaHealth::Suspect, "one clean is not enough");
        h.record_clean();
        assert_eq!(h.state(), ReplicaHealth::Healthy);
    }

    #[test]
    fn rebuild_ladder_walks_the_full_cycle() {
        let mut h = HealthTracker::new(1);
        h.force_quarantine();
        assert_eq!(h.state(), ReplicaHealth::Quarantined);
        h.begin_rebuild();
        assert_eq!(h.state(), ReplicaHealth::Rebuilding);
        assert!(!h.serving());
        assert!(!h.record_error(), "breaker is idle off rotation");
        h.rejoin();
        assert_eq!(h.state(), ReplicaHealth::Healthy);
    }

    #[test]
    fn backoff_is_deterministic_and_grows_exponentially() {
        let p = RetryPolicy {
            budget: 8,
            backoff_ms: 4,
            deadline_ms: 0,
        };
        assert_eq!(p.backoff(7, 1), p.backoff(7, 1));
        assert_ne!(
            p.backoff(7, 1),
            p.backoff(8, 1),
            "jitter must separate requests"
        );
        for attempt in 1..6u32 {
            let base = 4u64 << (attempt - 1);
            let d = p.backoff(42, attempt).as_millis() as u64;
            assert!((base..base + 4).contains(&d), "attempt {attempt}: {d}ms");
        }
    }
}
