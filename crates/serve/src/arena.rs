//! Paged per-request KV storage for the serving runtime.
//!
//! The single-sequence engine owns one [`ft2_model::engine::KvCache`] whose
//! blocks grow by appended rows. A serving batch holds many sequences of
//! wildly different lengths that start, finish, roll back, and get evicted
//! independently — per-sequence growable matrices would fragment and copy
//! constantly. [`KvArena`] instead owns one K and one V slab per decoder
//! block, carved into fixed-size pages of [`KV_PAGE`] positions; a
//! [`KvSeq`] maps a request's logical positions onto the pages it holds.
//! Pages come from a single free list shared by all blocks (the slabs grow
//! in lockstep, so one page id addresses every block's slab), which makes
//! alloc/free O(1) and eviction a straight hand-back of the page list.
//!
//! [`KvGuard`] carries per-position CRC seals over a sequence's K/V rows —
//! the per-request generalisation of the engine's KV-cache guard: the
//! scheduler seals each accepted position and, on the repair rung of the
//! recovery ladder, sweeps the seals to find (and rebuild) corrupted
//! positions without touching any other request's pages.

use ft2_numeric::crc64_f32s;
use ft2_tensor::Matrix;

/// Positions per KV page. Sixteen rows keeps page-grain rollback cheap
/// (a decode-step rollback frees at most one page) while amortising the
/// free-list traffic of long prefill bursts.
pub const KV_PAGE: usize = 16;

/// A slab of paged K/V storage shared by every sequence in a serving batch.
pub struct KvArena {
    /// Per-block key slabs, `[capacity_pages * KV_PAGE, hidden]`.
    k: Vec<Matrix>,
    /// Per-block value slabs, same shape as `k`.
    v: Vec<Matrix>,
    /// Free page ids; pages index all block slabs identically.
    free: Vec<usize>,
    capacity_pages: usize,
    hidden: usize,
}

impl KvArena {
    /// Empty arena for a model with `blocks` decoder blocks and hidden
    /// width `hidden`. Slabs start at zero pages and grow on demand.
    pub fn new(blocks: usize, hidden: usize) -> KvArena {
        KvArena {
            k: (0..blocks).map(|_| Matrix::zeros(0, hidden)).collect(),
            v: (0..blocks).map(|_| Matrix::zeros(0, hidden)).collect(),
            free: Vec::new(),
            capacity_pages: 0,
            hidden,
        }
    }

    /// Hidden width of every stored row.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Number of decoder blocks the arena stores K/V for.
    pub fn num_blocks(&self) -> usize {
        self.k.len()
    }

    /// Total pages ever allocated (slab size in pages).
    pub fn capacity_pages(&self) -> usize {
        self.capacity_pages
    }

    /// Pages currently on the free list.
    pub fn free_pages(&self) -> usize {
        self.free.len()
    }

    /// Pages currently held by live sequences.
    pub fn pages_in_use(&self) -> usize {
        self.capacity_pages - self.free.len()
    }

    /// Pop a free page, growing every block's slabs by one page when the
    /// free list is dry.
    fn alloc_page(&mut self) -> usize {
        if let Some(p) = self.free.pop() {
            return p;
        }
        let grow = Matrix::zeros(KV_PAGE, self.hidden);
        for slab in self.k.iter_mut().chain(self.v.iter_mut()) {
            slab.append_rows(&grow);
        }
        let p = self.capacity_pages;
        self.capacity_pages += 1;
        p
    }

    /// Return a page to the free list.
    fn free_page(&mut self, p: usize) {
        debug_assert!(p < self.capacity_pages, "freeing unallocated page {p}");
        debug_assert!(!self.free.contains(&p), "double free of page {p}");
        self.free.push(p);
    }

    /// Key row `row` (a slab row index from [`KvSeq::row_of`]) of block
    /// `block`.
    pub fn k_row(&self, block: usize, row: usize) -> &[f32] {
        self.k[block].row(row)
    }

    /// Value row `row` of block `block`.
    pub fn v_row(&self, block: usize, row: usize) -> &[f32] {
        self.v[block].row(row)
    }

    /// Mutable key row (the batch engine writes each step's projections
    /// here; a rebuild overwrites poisoned positions).
    pub fn k_row_mut(&mut self, block: usize, row: usize) -> &mut [f32] {
        self.k[block].row_mut(row)
    }

    /// Mutable value row.
    pub fn v_row_mut(&mut self, block: usize, row: usize) -> &mut [f32] {
        self.v[block].row_mut(row)
    }

    /// Integrity seal of one sequence position: a CRC64 chain over the K
    /// and V rows of every block at that position. Any single-row
    /// corruption changes the seal; the per-block rotation keeps a swap of
    /// two blocks' identical rows from cancelling out.
    pub fn seal(&self, seq: &KvSeq, pos: usize) -> u64 {
        let row = seq.row_of(pos);
        let mut h = 0u64;
        for b in 0..self.num_blocks() {
            h = h.rotate_left(7) ^ crc64_f32s(self.k_row(b, row));
            h = h.rotate_left(7) ^ crc64_f32s(self.v_row(b, row));
        }
        h
    }
}

/// One request's logical KV sequence: an ordered list of arena pages plus
/// the number of stored positions. Invariant: `pages.len()` is exactly
/// `len.div_ceil(KV_PAGE)` — a partially-filled tail page is kept and
/// refilled after rollback.
#[derive(Debug, Default)]
pub struct KvSeq {
    pages: Vec<usize>,
    len: usize,
}

impl KvSeq {
    /// Empty sequence holding no pages.
    pub fn new() -> KvSeq {
        KvSeq::default()
    }

    /// Number of stored positions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no positions are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The page ids this sequence holds, in position order.
    pub fn pages(&self) -> &[usize] {
        &self.pages
    }

    /// Slab row index of logical position `j` (same row in every block's
    /// slab, so the batch engine computes one row map per step).
    pub fn row_of(&self, j: usize) -> usize {
        debug_assert!(j < self.len, "position {j} beyond sequence length {}", self.len);
        self.pages[j / KV_PAGE] * KV_PAGE + j % KV_PAGE
    }

    /// Reserve storage for the next position, allocating a fresh page when
    /// the tail page is full. Returns the new position's slab row index.
    pub fn push(&mut self, arena: &mut KvArena) -> usize {
        if self.len == self.pages.len() * KV_PAGE {
            self.pages.push(arena.alloc_page());
        }
        let row = self.pages[self.len / KV_PAGE] * KV_PAGE + self.len % KV_PAGE;
        self.len += 1;
        row
    }

    /// Roll the sequence back to `len` positions, returning now-unused
    /// pages to the arena (token rollback; prior rows are immutable, so the
    /// retained prefix is exactly the pre-step contents).
    pub fn truncate(&mut self, len: usize, arena: &mut KvArena) {
        assert!(len <= self.len, "truncate {len} beyond length {}", self.len);
        let keep = len.div_ceil(KV_PAGE);
        for p in self.pages.drain(keep..) {
            arena.free_page(p);
        }
        self.len = len;
    }

    /// Release every page back to the arena (request completion or
    /// eviction). The sequence is empty afterwards.
    pub fn release(&mut self, arena: &mut KvArena) {
        self.truncate(0, arena);
    }
}

/// Per-request KV integrity seals: one CRC64 per accepted position. The
/// scheduler's repair rung sweeps these to localise stored-state corruption
/// to a position range, then rebuilds exactly that range.
#[derive(Debug, Default)]
pub struct KvGuard {
    seals: Vec<u64>,
}

impl KvGuard {
    /// Empty guard (no sealed positions).
    pub fn new() -> KvGuard {
        KvGuard::default()
    }

    /// Number of sealed positions.
    pub fn len(&self) -> usize {
        self.seals.len()
    }

    /// True when nothing is sealed yet.
    pub fn is_empty(&self) -> bool {
        self.seals.is_empty()
    }

    /// Seal position `pos` (must be the next unsealed position).
    pub fn seal(&mut self, arena: &KvArena, seq: &KvSeq, pos: usize) {
        debug_assert_eq!(pos, self.seals.len(), "seals must append in order");
        self.seals.push(arena.seal(seq, pos));
    }

    /// Re-seal an already-sealed position after a rebuild.
    pub fn reseal(&mut self, arena: &KvArena, seq: &KvSeq, pos: usize) {
        self.seals[pos] = arena.seal(seq, pos);
    }

    /// Drop seals past `len` (follows a sequence truncate).
    pub fn truncate(&mut self, len: usize) {
        self.seals.truncate(len);
    }

    /// Verify every sealed position, returning the first mismatch (the
    /// rebuild start) or `None` when all seals hold.
    pub fn verify(&self, arena: &KvArena, seq: &KvSeq) -> Option<usize> {
        (0..self.seals.len().min(seq.len())).find(|&j| arena.seal(seq, j) != self.seals[j])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pages_allocate_grow_and_free() {
        let mut arena = KvArena::new(2, 8);
        let mut seq = KvSeq::new();
        for j in 0..KV_PAGE + 1 {
            let row = seq.push(&mut arena);
            assert_eq!(row, seq.row_of(j));
        }
        assert_eq!(seq.pages().len(), 2);
        assert_eq!(arena.capacity_pages(), 2);
        assert_eq!(arena.pages_in_use(), 2);
        seq.truncate(KV_PAGE, &mut arena);
        assert_eq!(arena.free_pages(), 1);
        seq.release(&mut arena);
        assert_eq!(arena.free_pages(), 2);
        assert_eq!(arena.pages_in_use(), 0);
    }

    #[test]
    fn truncate_keeps_partial_tail_page() {
        let mut arena = KvArena::new(1, 4);
        let mut seq = KvSeq::new();
        for _ in 0..KV_PAGE + 3 {
            seq.push(&mut arena);
        }
        let tail_page = seq.pages()[1];
        seq.truncate(KV_PAGE + 1, &mut arena);
        assert_eq!(seq.pages().len(), 2);
        assert_eq!(seq.pages()[1], tail_page, "partial tail page must be kept");
        // Re-pushing reuses the retained tail page.
        let row = seq.push(&mut arena);
        assert_eq!(row, tail_page * KV_PAGE + 1);
    }

    #[test]
    fn seals_catch_single_element_corruption() {
        let mut arena = KvArena::new(2, 4);
        let mut seq = KvSeq::new();
        let mut guard = KvGuard::new();
        for j in 0..3 {
            let row = seq.push(&mut arena);
            for b in 0..2 {
                arena.k_row_mut(b, row)[0] = (j * 10 + b) as f32;
                arena.v_row_mut(b, row)[1] = (j * 100 + b) as f32;
            }
            guard.seal(&arena, &seq, j);
        }
        assert_eq!(guard.verify(&arena, &seq), None);
        let row1 = seq.row_of(1);
        arena.v_row_mut(1, row1)[1] += 0.5;
        assert_eq!(guard.verify(&arena, &seq), Some(1));
    }
}
