//! The continuous-batching scheduler with a per-request recovery ladder.
//!
//! [`Scheduler`] admits requests from a bounded queue into a batch of at
//! most `max_batch` lanes and advances every lane one token per
//! [`Scheduler::step`] via the batched decode step. Requests join and
//! leave the batch at step granularity — a finishing request's lane is
//! refilled from the queue on the next step, so the batch never drains to
//! restart (continuous batching rather than static batching).
//!
//! Fault tolerance is *per request*. Each lane carries its own tap (the
//! detector/injector), its own redecode budget, and its own KV pages, so
//! the engine's recovery ladder replays per lane:
//!
//! 1. **Rollback** — a lane whose step verdict is
//!    [`AnomalyVerdict::Storm`] truncates its own [`KvSeq`] back one
//!    position and re-decodes the same token on the next scheduler step,
//!    while every other lane keeps advancing. A transient fault re-strikes
//!    until it fades (the tap's `on_rollback` escalation), exactly as in
//!    the single-sequence engine.
//! 2. **Repair** — once the retry budget is exhausted, a policy with
//!    `repair` set takes one repair rung: the lane's [`KvGuard`] seals are
//!    swept, corrupted KV positions are rebuilt by a joint replay of the
//!    lane's known tokens (bit-identical to the incremental rows, so clean
//!    positions are untouched), and one extra re-decode is granted.
//! 3. **Evict** — a lane still storming after rollback and repair is
//!    evicted with [`EvictReason::RetriesExhausted`]: its pages return to
//!    the arena and its [`Completion`] reports the typed outcome. Eviction
//!    never stalls batchmates — the freed lane is refilled from the queue.
//!
//! A disabled [`RecoveryPolicy`] accepts storming tokens as-is (engine
//! parity), and prefill (step 0) is never rolled back.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

use crate::arena::{KvArena, KvGuard, KvSeq};
use crate::engine::{batch_step, BatchLane, BatchScratch};
use crate::event::{EventSink, ServeEvent};
use ft2_model::engine::KvCache;
use ft2_model::hooks::{AnomalyVerdict, LayerTap, TapList};
use ft2_model::{Model, RecoveryPolicy};
use ft2_parallel::WorkStealingPool;
use ft2_tensor::argmax;

/// Scheduler configuration (knobs `FT2_SERVE_MAX_BATCH` and
/// `FT2_SERVE_QUEUE_DEPTH` feed the first two fields).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Maximum concurrent lanes per decode step.
    pub max_batch: usize,
    /// Bounded admission-queue depth; a full queue rejects submissions
    /// with [`SubmitError::QueueFull`] (backpressure).
    pub queue_depth: usize,
    /// Per-request recovery ladder policy.
    pub recovery: RecoveryPolicy,
    /// Maintain per-position KV seals and sweep them on the repair rung.
    pub kv_guard: bool,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            max_batch: 8,
            queue_depth: 64,
            recovery: RecoveryPolicy::retries(2).with_repair(),
            kv_guard: true,
        }
    }
}

/// One generation request.
pub struct Request {
    /// Caller-chosen id, echoed in the [`Completion`].
    pub id: u64,
    /// Prompt tokens (must be non-empty).
    pub prompt: Vec<u32>,
    /// Tokens to generate (including the prefill token).
    pub gen_tokens: usize,
    /// Per-request tap: fault injector, detector, or both. `None` serves
    /// the request tap-less.
    pub tap: Option<Box<dyn LayerTap + Send>>,
}

/// Why a submission was rejected at admission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is full — back off and resubmit.
    QueueFull,
    /// Empty prompts cannot be prefilled.
    EmptyPrompt,
    /// `prompt.len() + gen_tokens` exceeds the model's `max_seq`.
    TooLong {
        /// Requested total sequence length.
        requested: usize,
        /// The model's maximum.
        max_seq: usize,
    },
    /// The server has begun a graceful drain and admits nothing new.
    ShuttingDown,
}

/// Why a request was evicted from the batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvictReason {
    /// The per-request recovery ladder ran out: the step still stormed
    /// after `redecodes` rollbacks (and the repair rung, when enabled).
    RetriesExhausted {
        /// The generation step that could not be decoded cleanly.
        step: usize,
        /// Rollbacks spent on that step.
        redecodes: u32,
    },
}

/// Why a request was rejected without (fully) running — carried by
/// [`Outcome::Rejected`]. Unlike eviction, rejection is a router or
/// runtime decision, not a recovery-ladder verdict, and it is always
/// typed: queued work is never silently dropped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The server is shutting down; queued requests are drained with this
    /// typed outcome instead of being dropped on the floor.
    Shutdown,
    /// The request's per-request deadline elapsed before any replica
    /// could finish it.
    DeadlineExceeded,
    /// The cross-replica retry budget was exhausted by repeated
    /// failovers.
    FailoverBudgetExhausted {
        /// Failovers spent on the request.
        failovers: u32,
    },
}

/// Terminal state of a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// All requested tokens were generated and accepted.
    Completed,
    /// The request was removed from the batch before completing.
    Evicted(EvictReason),
    /// The request was refused by the runtime (shutdown, deadline, or an
    /// exhausted failover budget); any accepted-token prefix is returned
    /// in the completion.
    Rejected(RejectReason),
}

impl Outcome {
    /// Short label for the event stream (`"Completed"` / `"Evicted"` /
    /// `"Rejected"`).
    pub fn label(&self) -> &'static str {
        match self {
            Outcome::Completed => "Completed",
            Outcome::Evicted(_) => "Evicted",
            Outcome::Rejected(_) => "Rejected",
        }
    }
}

/// Everything the caller gets back for one request.
#[derive(Clone, Debug)]
pub struct Completion {
    /// The request's id.
    pub id: u64,
    /// How the request ended.
    pub outcome: Outcome,
    /// Accepted tokens (all `gen_tokens` on completion, a prefix on
    /// eviction).
    pub tokens: Vec<u32>,
    /// Rollbacks taken across all steps.
    pub rollbacks: u32,
    /// Steps whose merged verdict was a storm.
    pub storms: u32,
    /// KV positions rebuilt by the repair rung.
    pub kv_repairs: usize,
    /// Repair rungs taken.
    pub repair_retries: u32,
    /// Nanoseconds from admission to each accepted token.
    pub token_ns: Vec<u64>,
}

/// A request occupying a batch lane.
struct ActiveRequest {
    id: u64,
    prompt: Vec<u32>,
    gen_tokens: usize,
    tap: Option<Box<dyn LayerTap + Send>>,
    seq: KvSeq,
    guard: Option<KvGuard>,
    tokens: Vec<u32>,
    token_ns: Vec<u64>,
    admitted_at: Instant,
    redecodes: u32,
    repaired_this_step: bool,
    rollbacks: u32,
    storms: u32,
    kv_repairs: usize,
    repair_retries: u32,
}

impl ActiveRequest {
    /// Token stored at sequence position `j` (prompt, then accepted
    /// generated tokens).
    fn token_at(&self, j: usize) -> u32 {
        if j < self.prompt.len() {
            self.prompt[j]
        } else {
            self.tokens[j - self.prompt.len()]
        }
    }

    fn into_completion(self, outcome: Outcome) -> Completion {
        Completion {
            id: self.id,
            outcome,
            tokens: self.tokens,
            rollbacks: self.rollbacks,
            storms: self.storms,
            kv_repairs: self.kv_repairs,
            repair_retries: self.repair_retries,
            token_ns: self.token_ns,
        }
    }
}

/// A queue entry: a fresh submission carries an empty `resume` prefix; a
/// request handed off from a failed replica carries the tokens it had
/// already been granted, which admission replays instead of re-deriving.
struct Queued {
    req: Request,
    resume: Vec<u32>,
}

/// Continuous-batching scheduler over one model and one KV arena.
///
/// The scheduler *owns* its model handle (`Arc<Model>`) rather than
/// borrowing it, so a replica can be torn down, its weights rebuilt in
/// place, and a fresh scheduler started — without any lifetime tying the
/// scheduler to an enclosing scope.
pub struct Scheduler {
    model: Arc<Model>,
    config: ServeConfig,
    arena: KvArena,
    queue: VecDeque<Queued>,
    active: Vec<ActiveRequest>,
    completions: Vec<Completion>,
    scratch: BatchScratch,
    /// Optional observation-only event stream (never blocks the ladder).
    sink: Option<EventSink>,
}

impl Scheduler {
    /// New scheduler serving `model` under `config`.
    pub fn new(model: Arc<Model>, config: ServeConfig) -> Scheduler {
        let c = model.config();
        let arena = KvArena::new(c.blocks, c.hidden);
        Scheduler {
            model,
            config,
            arena,
            queue: VecDeque::new(),
            active: Vec::new(),
            completions: Vec::new(),
            scratch: BatchScratch::new(),
            sink: None,
        }
    }

    /// Mirror every ladder decision onto `sink` as [`ServeEvent`]s.
    /// Observation only: emission is non-blocking and fault-silent, so
    /// streamed tokens stay bit-identical to an un-instrumented scheduler.
    pub fn set_event_sink(&mut self, sink: EventSink) {
        self.sink = Some(sink);
    }

    /// Push a completion, emitting the matching terminal event.
    fn finish(&mut self, completion: Completion) {
        if let Some(sink) = &self.sink {
            sink.emit(ServeEvent::Completed {
                replica: sink.replica(),
                id: completion.id,
                outcome: completion.outcome.label(),
                tokens: completion.tokens.len(),
                rollbacks: completion.rollbacks,
                storms: completion.storms,
            });
        }
        self.completions.push(completion);
    }

    /// Requests waiting for a lane.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Requests currently occupying lanes.
    pub fn active(&self) -> usize {
        self.active.len()
    }

    /// True when no queued or active work remains.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.active.is_empty()
    }

    /// The KV arena (tests inspect page accounting; fault drills corrupt
    /// sealed rows through it).
    pub fn arena_mut(&mut self) -> &mut KvArena {
        &mut self.arena
    }

    /// The KV sequence of the active request with the given id, if it
    /// currently occupies a lane (fault drills use this to address a
    /// request's arena rows).
    pub fn lane_seq(&self, id: u64) -> Option<&KvSeq> {
        self.active.iter().find(|ar| ar.id == id).map(|ar| &ar.seq)
    }

    /// Admit a request into the bounded queue.
    pub fn try_submit(&mut self, req: Request) -> Result<(), SubmitError> {
        if req.prompt.is_empty() {
            return Err(SubmitError::EmptyPrompt);
        }
        let requested = req.prompt.len() + req.gen_tokens;
        let max_seq = self.model.config().max_seq;
        if requested > max_seq {
            return Err(SubmitError::TooLong { requested, max_seq });
        }
        if self.queue.len() >= self.config.queue_depth {
            return Err(SubmitError::QueueFull);
        }
        self.queue.push_back(Queued {
            req,
            resume: Vec::new(),
        });
        Ok(())
    }

    /// Admit a handed-off request: `accepted` tokens it was already
    /// granted elsewhere are kept verbatim, and admission rebuilds its KV
    /// by the exact replay shape the repair rung uses, so the continuation
    /// is bit-identical to the request's solo generation. A request whose
    /// prefix already covers `gen_tokens` completes immediately.
    pub fn try_resume(&mut self, req: Request, accepted: Vec<u32>) -> Result<(), SubmitError> {
        if req.prompt.is_empty() {
            return Err(SubmitError::EmptyPrompt);
        }
        let requested = req.prompt.len() + req.gen_tokens;
        let max_seq = self.model.config().max_seq;
        if requested > max_seq {
            return Err(SubmitError::TooLong { requested, max_seq });
        }
        if self.queue.len() >= self.config.queue_depth {
            return Err(SubmitError::QueueFull);
        }
        if accepted.len() >= req.gen_tokens {
            self.finish(Completion {
                id: req.id,
                outcome: Outcome::Completed,
                tokens: accepted,
                rollbacks: 0,
                storms: 0,
                kv_repairs: 0,
                repair_retries: 0,
                token_ns: Vec::new(),
            });
            return Ok(());
        }
        self.queue.push_back(Queued {
            req,
            resume: accepted,
        });
        Ok(())
    }

    /// Reject every queued (not yet admitted) request with a typed
    /// [`Outcome::Rejected`] completion — accepted-token prefixes of
    /// resumed requests ride along in the completion rather than being
    /// dropped. Active lanes are untouched. Returns how many requests
    /// were rejected.
    pub fn drain_queue_rejected(&mut self, reason: RejectReason) -> usize {
        let drained: Vec<Queued> = self.queue.drain(..).collect();
        let n = drained.len();
        for q in drained {
            self.finish(Completion {
                id: q.req.id,
                outcome: Outcome::Rejected(reason),
                tokens: q.resume,
                rollbacks: 0,
                storms: 0,
                kv_repairs: 0,
                repair_retries: 0,
                token_ns: Vec::new(),
            });
        }
        n
    }

    /// Tear the scheduler down for cross-replica failover. Returns every
    /// in-flight and queued request together with its accepted-token
    /// prefix (the scheduler only appends a token *after* the decode step
    /// and recovery ladder accept it, so a panic mid-step can never lose
    /// or corrupt this prefix), plus any finished completions not yet
    /// drained. All KV state is discarded with the scheduler — a survivor
    /// re-prefills from the prefix via [`Scheduler::try_resume`].
    pub fn into_failover(mut self) -> (Vec<(Request, Vec<u32>)>, Vec<Completion>) {
        let mut inflight = Vec::with_capacity(self.active.len() + self.queue.len());
        for ar in self.active.drain(..) {
            inflight.push((
                Request {
                    id: ar.id,
                    prompt: ar.prompt,
                    gen_tokens: ar.gen_tokens,
                    tap: ar.tap,
                },
                ar.tokens,
            ));
        }
        for q in self.queue.drain(..) {
            inflight.push((q.req, q.resume));
        }
        (inflight, std::mem::take(&mut self.completions))
    }

    /// Drain completed requests accumulated since the last call.
    pub fn drain_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.completions)
    }

    /// Prefill one queued request into a lane: run the prompt through the
    /// single-sequence path (so its taps see the exact prefill the engine
    /// would fire), copy the KV rows into the arena, and record the first
    /// token. Prefill is never rolled back (engine parity) — a storm is
    /// counted and the token accepted.
    ///
    /// A resumed request (non-empty handoff prefix) replays tap-less
    /// instead: the joint prompt prefill plus one single-token step per
    /// accepted token — exactly the [`Scheduler::rebuild_kv`] shape, and
    /// exactly how the accepted rows were first produced — so the KV it
    /// rebuilds is bit-identical to the failed replica's accepted state
    /// and the continuation matches solo generation. The tap's own state
    /// (rollback escalation etc.) travelled with the request and is not
    /// re-fired for steps it already saw.
    fn admit(&mut self, q: Queued) {
        let Queued { req, resume } = q;
        let admitted_at = Instant::now();
        let mut ar = ActiveRequest {
            id: req.id,
            prompt: req.prompt,
            gen_tokens: req.gen_tokens,
            tap: req.tap,
            seq: KvSeq::new(),
            guard: self.config.kv_guard.then(KvGuard::new),
            tokens: Vec::new(),
            token_ns: Vec::new(),
            admitted_at,
            redecodes: 0,
            repaired_this_step: false,
            rollbacks: 0,
            storms: 0,
            kv_repairs: 0,
            repair_retries: 0,
        };
        let resuming = !resume.is_empty();
        let mut cache = KvCache::new(self.model.config());
        let mut taps = TapList::new();
        if !resuming {
            if let Some(tap) = ar.tap.as_deref_mut() {
                taps.push(tap);
            }
        }
        let hidden = self
            .model
            .forward_step(&ar.prompt, 0, 0, &mut cache, &mut taps);
        let report = taps.end_step(0);
        drop(taps);
        if !resuming && report.verdict == AnomalyVerdict::Storm {
            ar.storms += 1;
        }
        if resuming {
            // Replay each accepted token but the last as a single-token
            // step; the last accepted token is the next lane input, so
            // its KV row is written by the coming batch step, preserving
            // the invariant `seq.len() == prompt.len() + tokens.len() - 1`.
            ar.tokens = resume;
            let plen = ar.prompt.len();
            let mut replay_taps = TapList::new();
            for j in 0..ar.tokens.len() - 1 {
                let _ = self.model.forward_step(
                    &[ar.tokens[j]],
                    plen + j,
                    j + 1,
                    &mut cache,
                    &mut replay_taps,
                );
            }
        }
        let kv_rows = ar.prompt.len() + ar.tokens.len().saturating_sub(1);
        for j in 0..kv_rows {
            let row = ar.seq.push(&mut self.arena);
            for b in 0..cache.num_blocks() {
                self.arena
                    .k_row_mut(b, row)
                    .copy_from_slice(cache.block(b).k.row(j));
                self.arena
                    .v_row_mut(b, row)
                    .copy_from_slice(cache.block(b).v.row(j));
            }
            if let Some(guard) = &mut ar.guard {
                guard.seal(&self.arena, &ar.seq, j);
            }
        }
        if let Some(sink) = &self.sink {
            sink.emit(ServeEvent::Admitted {
                replica: sink.replica(),
                id: ar.id,
                resumed: if resuming { ar.tokens.len() } else { 0 },
            });
        }
        if resuming {
            let now = admitted_at.elapsed().as_nanos() as u64;
            ar.token_ns.resize(ar.tokens.len(), now);
        } else {
            let last = hidden.slice_rows(hidden.rows() - 1, hidden.rows());
            let first = argmax(&self.model.logits(&last)) as u32;
            ar.tokens.push(first);
            let t_ns = admitted_at.elapsed().as_nanos() as u64;
            ar.token_ns.push(t_ns);
            if let Some(sink) = &self.sink {
                sink.emit(ServeEvent::Token {
                    replica: sink.replica(),
                    id: ar.id,
                    step: 0,
                    token: first,
                    report,
                    t_ns,
                });
            }
        }
        if ar.tokens.len() >= ar.gen_tokens {
            ar.seq.release(&mut self.arena);
            let completion = ar.into_completion(Outcome::Completed);
            self.finish(completion);
        } else {
            self.active.push(ar);
        }
    }

    /// Rebuild this lane's KV positions `from..seq.len()` by replaying its
    /// known tokens (prompt plus accepted tokens) exactly as the rows were
    /// first produced — a joint prefill for the prompt, single-token steps
    /// for decode positions. The kernel path depends on row count, so only
    /// this replay shape is bit-identical to the rows it replaces (a joint
    /// replay of everything would perturb clean positions in the last
    /// bits and break the token-identity contract). Returns positions
    /// rebuilt.
    fn rebuild_kv(model: &Model, arena: &mut KvArena, ar: &mut ActiveRequest, from: usize) -> usize {
        let len = ar.seq.len();
        if from >= len {
            return 0;
        }
        let plen = ar.prompt.len().min(len);
        let mut cache = KvCache::new(model.config());
        let mut taps = TapList::new();
        let _ = model.forward_step(&ar.prompt[..plen], 0, 0, &mut cache, &mut taps);
        for j in plen..len {
            let _ = model.forward_step(&[ar.token_at(j)], j, j - plen + 1, &mut cache, &mut taps);
        }
        for j in from..len {
            let row = ar.seq.row_of(j);
            for b in 0..cache.num_blocks() {
                arena
                    .k_row_mut(b, row)
                    .copy_from_slice(cache.block(b).k.row(j));
                arena
                    .v_row_mut(b, row)
                    .copy_from_slice(cache.block(b).v.row(j));
            }
        }
        if let Some(guard) = &mut ar.guard {
            for j in from..len {
                guard.reseal(arena, &ar.seq, j);
            }
        }
        len - from
    }

    /// Advance the batch one decode step: admit queued requests into free
    /// lanes, decode every lane, then run each lane's recovery ladder.
    /// Returns `false` when there was nothing to do.
    pub fn step(&mut self, pool: &WorkStealingPool) -> bool {
        while self.active.len() < self.config.max_batch {
            match self.queue.pop_front() {
                Some(q) => self.admit(q),
                None => break,
            }
        }
        if self.active.is_empty() {
            return false;
        }

        // Build one lane per active request and decode the batch.
        let Scheduler {
            model,
            arena,
            active,
            scratch,
            ..
        } = self;
        let mut lanes: Vec<BatchLane<'_>> = active
            .iter_mut()
            .map(|ar| BatchLane {
                token: *ar.tokens.last().expect("active lane without a token"),
                pos: ar.prompt.len() + ar.tokens.len() - 1,
                step: ar.tokens.len(),
                seq: &mut ar.seq,
                tap: ar.tap.as_deref_mut(),
            })
            .collect();
        let next = batch_step(model, arena, &mut lanes, pool, scratch);
        drop(lanes);

        // Per-lane recovery ladder.
        let policy = self.config.recovery;
        let mut finished: Vec<(usize, Outcome)> = Vec::new();
        for (i, ar) in self.active.iter_mut().enumerate() {
            let step = ar.tokens.len();
            let pos = ar.prompt.len() + ar.tokens.len() - 1;
            let report = match ar.tap.as_deref_mut() {
                Some(tap) => tap.end_step(step),
                None => Default::default(),
            };
            if report.verdict == AnomalyVerdict::Storm {
                ar.storms += 1;
                let rollback = |ar: &mut ActiveRequest, arena: &mut KvArena| {
                    ar.seq.truncate(pos, arena);
                    if let Some(guard) = &mut ar.guard {
                        guard.truncate(pos);
                    }
                    if let Some(tap) = ar.tap.as_deref_mut() {
                        tap.on_rollback(step, ar.redecodes);
                    }
                    ar.rollbacks += 1;
                    ar.redecodes += 1;
                };
                if ar.redecodes < policy.max_retries {
                    let attempt = ar.redecodes;
                    rollback(ar, &mut self.arena);
                    if let Some(sink) = &self.sink {
                        sink.emit(ServeEvent::Rollback {
                            replica: sink.replica(),
                            id: ar.id,
                            step,
                            attempt,
                            report,
                        });
                    }
                    continue;
                }
                if policy.enabled() && policy.repair && !ar.repaired_this_step {
                    let attempt = ar.redecodes;
                    rollback(ar, &mut self.arena);
                    let bad = ar
                        .guard
                        .as_ref()
                        .and_then(|g| g.verify(&self.arena, &ar.seq));
                    let mut rebuilt = 0;
                    if let Some(bad) = bad {
                        rebuilt = Self::rebuild_kv(&self.model, &mut self.arena, ar, bad);
                        ar.kv_repairs += rebuilt;
                    }
                    ar.repair_retries += 1;
                    ar.repaired_this_step = true;
                    if let Some(sink) = &self.sink {
                        sink.emit(ServeEvent::Rollback {
                            replica: sink.replica(),
                            id: ar.id,
                            step,
                            attempt,
                            report,
                        });
                        sink.emit(ServeEvent::Repair {
                            replica: sink.replica(),
                            id: ar.id,
                            step,
                            positions: rebuilt,
                        });
                    }
                    continue;
                }
                if policy.enabled() {
                    finished.push((
                        i,
                        Outcome::Evicted(EvictReason::RetriesExhausted {
                            step,
                            redecodes: ar.redecodes,
                        }),
                    ));
                    if let Some(sink) = &self.sink {
                        sink.emit(ServeEvent::Evicted {
                            replica: sink.replica(),
                            id: ar.id,
                            step,
                            redecodes: ar.redecodes,
                        });
                    }
                    continue;
                }
                // Disabled policy: fall through and accept the storming
                // token (engine parity).
            }
            // Accept.
            ar.tokens.push(next[i]);
            let t_ns = ar.admitted_at.elapsed().as_nanos() as u64;
            ar.token_ns.push(t_ns);
            ar.redecodes = 0;
            ar.repaired_this_step = false;
            if let Some(guard) = &mut ar.guard {
                guard.seal(&self.arena, &ar.seq, pos);
            }
            if let Some(sink) = &self.sink {
                sink.emit(ServeEvent::Token {
                    replica: sink.replica(),
                    id: ar.id,
                    step,
                    token: next[i],
                    report,
                    t_ns,
                });
            }
            if ar.tokens.len() >= ar.gen_tokens {
                finished.push((i, Outcome::Completed));
            }
        }

        // Remove finished lanes (largest index first so indices stay valid)
        // and hand their pages back to the arena.
        finished.sort_by_key(|f| std::cmp::Reverse(f.0));
        for (i, outcome) in finished {
            let mut ar = self.active.remove(i);
            ar.seq.release(&mut self.arena);
            let completion = ar.into_completion(outcome);
            self.finish(completion);
        }
        true
    }

    /// Run until every queued and active request has completed or been
    /// evicted, returning all completions in finish order.
    pub fn run(&mut self, pool: &WorkStealingPool) -> Vec<Completion> {
        while self.step(pool) {}
        self.drain_completions()
    }
}
