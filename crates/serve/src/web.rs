//! The zero-dependency HTTP/SSE observability front end.
//!
//! [`WebServer`] is a std-only (`TcpListener` + threads, no HTTP crate)
//! window onto the serving runtime, built for the live demo + streaming
//! latency harness (`ft2-repro serve --web`):
//!
//! * `GET /` — an embedded single-page viewer (one static HTML/JS string,
//!   no npm, no build step): tokens animate in colored by their step's
//!   [`AnomalyVerdict`](ft2_model::AnomalyVerdict), with a per-block
//!   bound-hit heatmap, rollback/repair/eviction markers, replica-health
//!   badges, and fault-injection buttons.
//! * `GET /events` — a Server-Sent-Events stream of [`ServeEvent`]s
//!   (`event: <kind>` / `data: <json>` frames). Client slots are bounded
//!   (`FT2_WEB_MAX_CLIENTS`); a full house answers `503`. Dead clients are
//!   detected by write failure (events or keepalive pings) and their slots
//!   freed.
//! * `POST /inject` — the live fault control: a form-encoded body
//!   (`kind=flip&block=2`) parses into an [`ft2_fault::LiveFault`] and is
//!   forwarded to the harness over a channel; the HTTP layer never touches
//!   the decode path itself.
//!
//! **Observation only.** The server consumes an event `Receiver` and
//! produces a fault `Sender` — it holds no scheduler, no model, and no
//! lock shared with the decode loop, so streamed tokens are bit-identical
//! to an unobserved run by construction. A graceful [`WebServer::shutdown`]
//! drains pending events, sends every open stream a final typed
//! `event: shutdown` frame, closes the streams, and joins both service
//! threads — repeated start/stop cycles leak no threads.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::event::ServeEvent;
use ft2_fault::LiveFault;
use ft2_parallel::lock_clean;

/// Request heads larger than this are rejected (the demo endpoints need a
/// few hundred bytes at most).
const MAX_HEAD: usize = 8 * 1024;

/// Injection bodies larger than this are rejected.
const MAX_BODY: usize = 1024;

/// A slow or stuck client gets this long per socket read/write before the
/// connection is abandoned — the accept loop must never wedge.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// Broadcast-loop tick; keepalive pings go out every [`PING_TICKS`] ticks
/// so dead client slots are reclaimed even on a quiet stream.
const TICK: Duration = Duration::from_millis(50);

/// Ticks between `: ping` keepalives (~1 s).
const PING_TICKS: u32 = 20;

/// Web front-end configuration (knobs `FT2_WEB_ADDR` and
/// `FT2_WEB_MAX_CLIENTS` feed these fields at the harness level).
#[derive(Clone, Debug)]
pub struct WebConfig {
    /// Bind address; port `0` picks an ephemeral port (CI smoke).
    pub addr: String,
    /// Maximum concurrent SSE clients; further `GET /events` get `503`.
    pub max_clients: usize,
}

impl Default for WebConfig {
    fn default() -> WebConfig {
        WebConfig {
            addr: "127.0.0.1:8472".to_string(),
            max_clients: 16,
        }
    }
}

/// Append one SSE frame (`event: <kind>` + `data: <data>` + blank line) to
/// `w`. `write_all` loops over partial writes, so a frame is emitted whole
/// or errors — event boundaries never split across a failed client.
pub fn write_frame<W: Write>(w: &mut W, kind: &str, data: &str) -> io::Result<()> {
    let frame = format!("event: {kind}\ndata: {data}\n\n");
    w.write_all(frame.as_bytes())
}

/// State shared between the accept and broadcast threads.
struct Shared {
    clients: Mutex<Vec<TcpStream>>,
    max_clients: usize,
    injects: Sender<LiveFault>,
    stop: AtomicBool,
}

impl Shared {
    /// Write one frame to every client, dropping clients whose write
    /// fails (their slot frees immediately).
    fn broadcast(&self, kind: &str, data: &str) {
        // ft2: blocking-ok (frame writes are bounded by IO_TIMEOUT; a failed
        // write drops the client, which is the dead-slot reclaim mechanism)
        let mut clients = lock_clean(&self.clients);
        clients.retain_mut(|c| write_frame(c, kind, data).and_then(|_| c.flush()).is_ok());
    }

    /// Keepalive comment — detects dead clients on quiet streams.
    fn ping(&self) {
        // ft2: blocking-ok (keepalive writes are bounded by IO_TIMEOUT)
        let mut clients = lock_clean(&self.clients);
        clients.retain_mut(|c| c.write_all(b": ping\n\n").and_then(|_| c.flush()).is_ok());
    }
}

/// The HTTP/SSE server. Dropping it (or calling [`WebServer::shutdown`])
/// performs the graceful drain.
pub struct WebServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    broadcast: Option<JoinHandle<()>>,
}

impl WebServer {
    /// Bind `config.addr` and start serving: events drained from `events`
    /// fan out to every SSE client; faults posted to `/inject` are
    /// forwarded into `injects`.
    pub fn start(
        config: WebConfig,
        events: Receiver<ServeEvent>,
        injects: Sender<LiveFault>,
    ) -> io::Result<WebServer> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            clients: Mutex::new(Vec::new()),
            max_clients: config.max_clients.max(1),
            injects,
            stop: AtomicBool::new(false),
        });

        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("ft2-web-accept".to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if accept_shared.stop.load(Ordering::SeqCst) {
                        break;
                    }
                    if let Ok(stream) = conn {
                        // Served inline: requests are tiny, and per-socket
                        // timeouts bound how long one client can hold the
                        // loop.
                        let _ = handle_conn(stream, &accept_shared);
                    }
                }
            })?;

        let bcast_shared = Arc::clone(&shared);
        let broadcast = std::thread::Builder::new()
            .name("ft2-web-broadcast".to_string())
            .spawn(move || {
                let mut ticks = 0u32;
                loop {
                    if bcast_shared.stop.load(Ordering::SeqCst) {
                        break;
                    }
                    match events.recv_timeout(TICK) {
                        Ok(ev) => bcast_shared.broadcast(ev.kind(), &ev.to_json()),
                        Err(RecvTimeoutError::Timeout) => {
                            ticks += 1;
                            if ticks >= PING_TICKS {
                                bcast_shared.ping();
                                ticks = 0;
                            }
                        }
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                }
                // Graceful drain: flush whatever is still queued, then
                // close every stream with a final typed event.
                while let Ok(ev) = events.try_recv() {
                    bcast_shared.broadcast(ev.kind(), &ev.to_json());
                }
                let shutdown = ServeEvent::Shutdown;
                // ft2: blocking-ok (final shutdown frames, IO_TIMEOUT-bounded;
                // the accept loop is already stopped so nothing else contends)
                let mut clients = lock_clean(&bcast_shared.clients);
                for c in clients.iter_mut() {
                    let _ = write_frame(c, shutdown.kind(), &shutdown.to_json())
                        .and_then(|_| c.flush());
                }
                clients.clear();
            })?;

        Ok(WebServer {
            addr,
            shared,
            accept: Some(accept),
            broadcast: Some(broadcast),
        })
    }

    /// The actually-bound address (resolves port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connected SSE clients right now.
    pub fn clients(&self) -> usize {
        lock_clean(&self.shared.clients).len()
    }

    /// Graceful drain: stop accepting, flush pending events, send every
    /// open stream the final `shutdown` frame, and join both threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Wake the (blocking) accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.broadcast.take() {
            let _ = h.join();
        }
    }
}

impl Drop for WebServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Read the request head (+ body for POST), route, respond. Errors just
/// drop the connection — this is a demo surface, not a hardened proxy.
fn handle_conn(stream: TcpStream, shared: &Arc<Shared>) -> io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut reader = BufReader::new(stream.try_clone()?);

    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let path = parts.next().unwrap_or("").to_string();

    // Drain headers, keeping only Content-Length.
    let mut content_length = 0usize;
    let mut head_bytes = request_line.len();
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line)?;
        head_bytes += n;
        if n == 0 || line.trim().is_empty() || head_bytes > MAX_HEAD {
            break;
        }
        if let Some((k, v)) = line.split_once(':') {
            if k.trim().eq_ignore_ascii_case("content-length") {
                content_length = v.trim().parse().unwrap_or(0);
            }
        }
    }

    let mut stream = stream;
    match (method.as_str(), path.as_str()) {
        ("GET", "/") | ("GET", "/index.html") => {
            respond(&mut stream, 200, "text/html; charset=utf-8", VIEWER_HTML)
        }
        ("GET", "/events") => {
            // ft2: blocking-ok (holding the slot lock across the IO_TIMEOUT-
            // bounded handshake writes is what makes slot reservation atomic)
            let mut clients = lock_clean(&shared.clients);
            if clients.len() >= shared.max_clients {
                drop(clients);
                return respond(
                    &mut stream,
                    503,
                    "application/json",
                    r#"{"ok":false,"error":"client slots full"}"#,
                );
            }
            stream.write_all(
                b"HTTP/1.1 200 OK\r\n\
                  Content-Type: text/event-stream\r\n\
                  Cache-Control: no-cache\r\n\
                  Connection: close\r\n\r\n",
            )?;
            stream.write_all(b": connected\n\n")?;
            stream.flush()?;
            clients.push(stream);
            Ok(())
        }
        ("POST", "/inject") => {
            let n = content_length.min(MAX_BODY);
            let mut body = vec![0u8; n];
            reader.read_exact(&mut body)?;
            let body = String::from_utf8_lossy(&body);
            match LiveFault::parse(&body) {
                Ok(fault) => {
                    let what = fault.describe();
                    if shared.injects.send(fault).is_ok() {
                        respond(
                            &mut stream,
                            200,
                            "application/json",
                            &format!(r#"{{"ok":true,"what":"{what}"}}"#),
                        )
                    } else {
                        respond(
                            &mut stream,
                            503,
                            "application/json",
                            r#"{"ok":false,"error":"injector gone"}"#,
                        )
                    }
                }
                Err(e) => respond(
                    &mut stream,
                    400,
                    "application/json",
                    &format!(r#"{{"ok":false,"error":"{e}"}}"#),
                ),
            }
        }
        _ => respond(
            &mut stream,
            404,
            "application/json",
            r#"{"ok":false,"error":"not found"}"#,
        ),
    }
}

fn respond(stream: &mut TcpStream, status: u16, ctype: &str, body: &str) -> io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        503 => "Service Unavailable",
        _ => "",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// The embedded single-page viewer (no npm, no build step): tokens stream
/// in colored by verdict, a per-block heatmap accumulates bound hits,
/// recovery markers and replica health render inline, and the inject
/// buttons drive `POST /inject`.
const VIEWER_HTML: &str = r#"<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>ft2 live token stream</title>
<style>
  body { background:#0b0e14; color:#cdd6f4; font:14px/1.5 monospace; margin:0; padding:1rem 2rem; }
  h1 { font-size:1.1rem; color:#89b4fa; }
  #replicas span { display:inline-block; margin-right:.6rem; padding:.1rem .5rem; border-radius:3px; background:#313244; }
  #replicas .Healthy { background:#1d4030; } #replicas .Suspect { background:#5a4a1a; }
  #replicas .Quarantined { background:#5a1a1a; } #replicas .Rebuilding { background:#1a3a5a; }
  #heat { display:grid; grid-template-columns:repeat(32,1fr); gap:2px; margin:.6rem 0; }
  #heat div { height:14px; background:#1e2030; border-radius:2px; font-size:8px; text-align:center; color:#6c7086; }
  #stream { background:#11131c; border:1px solid #313244; border-radius:4px; padding:.6rem; min-height:8rem; max-height:45vh; overflow-y:auto; word-break:break-all; }
  .tok { display:inline-block; margin:1px; padding:0 3px; border-radius:2px; background:#1e2030; }
  .tok.Clean { color:#a6e3a1; } .tok.Corrected { color:#f9e2af; background:#3a3320; }
  .tok.Storm { color:#f38ba8; background:#451a24; font-weight:bold; }
  .mark { display:inline-block; margin:1px 2px; padding:0 4px; border-radius:2px; font-weight:bold; }
  .mark.rollback { background:#704214; color:#fab387; } .mark.repair { background:#14465a; color:#89dceb; }
  .mark.evicted { background:#5a1a1a; color:#f38ba8; } .mark.completed { background:#1d4030; color:#a6e3a1; }
  .mark.inject { background:#4a1a5a; color:#cba6f7; }
  button { background:#313244; color:#cdd6f4; border:1px solid #45475a; border-radius:3px; padding:.3rem .7rem; margin-right:.4rem; font:inherit; cursor:pointer; }
  button:hover { background:#45475a; }
  #log { color:#6c7086; font-size:12px; margin-top:.6rem; }
</style>
</head>
<body>
<h1>ft2 — live detection &middot; escalation &middot; recovery</h1>
<div id="replicas"></div>
<div>per-block bound hits</div>
<div id="heat"></div>
<div id="stream"></div>
<div style="margin-top:.8rem">
  <button onclick="inject('kind=flip&block=2')">flip a bit in block 2</button>
  <button onclick="inject('kind=storm&block=0')">storm block 0</button>
  <button onclick="inject('kind=crash&replica=1')">crash replica 1</button>
</div>
<div id="log"></div>
<script>
const stream = document.getElementById('stream');
const log = document.getElementById('log');
const heatEl = document.getElementById('heat');
const heat = new Array(32).fill(0);
for (let i = 0; i < 32; i++) { const d = document.createElement('div'); d.title = 'block ' + i; heatEl.appendChild(d); }
function renderHeat() {
  for (let i = 0; i < 32; i++) {
    const h = heat[i];
    const a = h === 0 ? 0 : Math.min(1, 0.25 + Math.log2(1 + h) / 8);
    heatEl.children[i].style.background = h === 0 ? '#1e2030' : 'rgba(243,139,168,' + a + ')';
    heatEl.children[i].textContent = h > 0 ? h : '';
  }
}
const replicas = {};
function renderReplicas() {
  document.getElementById('replicas').innerHTML = Object.entries(replicas)
    .map(([r, s]) => '<span class="' + s + '">replica ' + r + ': ' + s + '</span>').join('');
}
function append(el) { stream.appendChild(el); stream.scrollTop = stream.scrollHeight; }
function mark(cls, text) { const s = document.createElement('span'); s.className = 'mark ' + cls; s.textContent = text; append(s); }
const es = new EventSource('/events');
es.addEventListener('token', e => {
  const t = JSON.parse(e.data);
  const s = document.createElement('span');
  s.className = 'tok ' + t.verdict;
  s.title = 'req ' + t.id + ' step ' + t.step + ' verdict ' + t.verdict;
  s.textContent = t.token;
  append(s);
  for (const [b, h] of t.block_hits) { heat[Math.min(b, 31)] += h; }
  if (t.block_hits.length) renderHeat();
});
es.addEventListener('rollback', e => {
  const d = JSON.parse(e.data);
  mark('rollback', '↩ rollback s' + d.step);
  for (const [b, h] of d.block_hits) { heat[Math.min(b, 31)] += h; }
  if (d.block_hits.length) renderHeat();
});
es.addEventListener('repair', e => { const d = JSON.parse(e.data); mark('repair', '⚒ repair ' + d.positions); });
es.addEventListener('evicted', e => { const d = JSON.parse(e.data); mark('evicted', '✕ evicted ' + d.id); });
es.addEventListener('completed', e => { const d = JSON.parse(e.data); mark('completed', '✓ ' + d.id + (d.storms ? ' (' + d.storms + ' storms)' : '')); });
es.addEventListener('inject', e => { const d = JSON.parse(e.data); mark('inject', '⚡ ' + d.what); });
es.addEventListener('health', e => { const d = JSON.parse(e.data); replicas[d.replica] = d.state; renderReplicas(); });
es.addEventListener('admitted', e => { const d = JSON.parse(e.data); log.textContent = 'admitted request ' + d.id; });
es.addEventListener('shutdown', () => { log.textContent = 'server shut down'; es.close(); });
es.onerror = () => { log.textContent = 'stream disconnected'; };
function inject(body) {
  fetch('/inject', { method: 'POST', headers: {'Content-Type': 'application/x-www-form-urlencoded'}, body })
    .then(r => r.json()).then(r => { log.textContent = r.ok ? 'injected: ' + r.what : 'inject failed: ' + r.error; });
}
renderHeat();
</script>
</body>
</html>
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventSink;
    use ft2_model::hooks::StepReport;
    use std::time::Instant;

    /// A writer that accepts at most `max` bytes per `write` call —
    /// exercises `write_all`'s partial-write loop.
    struct ChunkedWriter {
        buf: Vec<u8>,
        max: usize,
    }

    impl Write for ChunkedWriter {
        fn write(&mut self, data: &[u8]) -> io::Result<usize> {
            let n = data.len().min(self.max);
            self.buf.extend_from_slice(&data[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn frames_are_whole_under_partial_writes() {
        let mut w = ChunkedWriter {
            buf: Vec::new(),
            max: 3,
        };
        let ev = ServeEvent::Token {
            replica: 0,
            id: 1,
            step: 2,
            token: 7,
            report: StepReport::default(),
            t_ns: 10,
        };
        write_frame(&mut w, ev.kind(), &ev.to_json()).unwrap();
        write_frame(&mut w, "shutdown", r#"{"ev":"shutdown"}"#).unwrap();
        let text = String::from_utf8(w.buf).unwrap();
        let frames: Vec<&str> = text.split("\n\n").filter(|f| !f.is_empty()).collect();
        assert_eq!(frames.len(), 2, "two complete frames: {text:?}");
        assert!(frames[0].starts_with("event: token\ndata: {"));
        assert!(frames[1].starts_with("event: shutdown\ndata: "));
    }

    fn start_test_server(max_clients: usize) -> (WebServer, EventSink, Receiver<LiveFault>) {
        let (sink, events) = EventSink::channel();
        let (inj_tx, inj_rx) = std::sync::mpsc::channel();
        let server = WebServer::start(
            WebConfig {
                addr: "127.0.0.1:0".to_string(),
                max_clients,
            },
            events,
            inj_tx,
        )
        .expect("bind ephemeral port");
        (server, sink, inj_rx)
    }

    fn http_get(addr: SocketAddr, path: &str) -> TcpStream {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        write!(s, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        s
    }

    fn read_until(s: &mut TcpStream, needle: &str, deadline: Duration) -> String {
        let start = Instant::now();
        let mut text = String::new();
        let mut buf = [0u8; 4096];
        while start.elapsed() < deadline {
            match s.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => {
                    text.push_str(&String::from_utf8_lossy(&buf[..n]));
                    if text.contains(needle) {
                        return text;
                    }
                }
                Err(_) => break,
            }
        }
        text
    }

    #[test]
    fn viewer_page_and_event_stream_serve_end_to_end() {
        let (server, sink, _inj) = start_test_server(4);
        let addr = server.addr();

        let mut page = http_get(addr, "/");
        let html = read_until(&mut page, "</html>", Duration::from_secs(5));
        assert!(html.starts_with("HTTP/1.1 200"));
        assert!(html.contains("EventSource('/events')"));
        assert!(html.contains("kind=flip&block=2"));

        let mut es = http_get(addr, "/events");
        let head = read_until(&mut es, ": connected", Duration::from_secs(5));
        assert!(head.contains("text/event-stream"), "got {head:?}");

        let mut report = StepReport::default();
        report.record_block_hit(2);
        sink.emit(ServeEvent::Token {
            replica: 0,
            id: 42,
            step: 1,
            token: 7,
            report,
            t_ns: 99,
        });
        let frame = read_until(&mut es, "\n\n", Duration::from_secs(5));
        assert!(frame.contains("event: token"), "got {frame:?}");
        assert!(frame.contains(r#""block_hits":[[2,1]]"#), "got {frame:?}");

        let mut missing = http_get(addr, "/nope");
        let resp = read_until(&mut missing, "}", Duration::from_secs(5));
        assert!(resp.starts_with("HTTP/1.1 404"));

        server.shutdown();
        let rest = read_until(&mut es, "event: shutdown", Duration::from_secs(5));
        assert!(rest.contains("event: shutdown"), "got {rest:?}");
    }

    #[test]
    fn inject_endpoint_forwards_typed_faults() {
        let (server, _sink, inj) = start_test_server(4);
        let addr = server.addr();

        let body = "kind=flip&block=2";
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        write!(
            s,
            "POST /inject HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        let resp = read_until(&mut s, "}", Duration::from_secs(5));
        assert!(resp.starts_with("HTTP/1.1 200"), "got {resp:?}");
        assert!(resp.contains(r#""what":"flip block 2""#));
        assert_eq!(
            inj.recv_timeout(Duration::from_secs(5)).unwrap(),
            LiveFault::Flip { block: 2 }
        );

        // Garbage is a 400, not a silent default.
        let body = "kind=meteor";
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        write!(
            s,
            "POST /inject HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        let resp = read_until(&mut s, "}", Duration::from_secs(5));
        assert!(resp.starts_with("HTTP/1.1 400"), "got {resp:?}");
        server.shutdown();
    }

    #[test]
    fn full_house_rejects_and_disconnect_frees_the_slot() {
        let (server, sink, _inj) = start_test_server(1);
        let addr = server.addr();

        let mut first = http_get(addr, "/events");
        read_until(&mut first, ": connected", Duration::from_secs(5));
        assert_eq!(server.clients(), 1);

        let mut second = http_get(addr, "/events");
        let resp = read_until(&mut second, "}", Duration::from_secs(5));
        assert!(resp.starts_with("HTTP/1.1 503"), "got {resp:?}");

        // Disconnect the first client; event writes must detect the dead
        // socket and free the slot (first write may land in the OS buffer,
        // so emit until the retain sweep catches it).
        drop(first);
        let start = Instant::now();
        while server.clients() > 0 && start.elapsed() < Duration::from_secs(10) {
            sink.emit(ServeEvent::Shutdown);
            std::thread::sleep(Duration::from_millis(20));
        }
        assert_eq!(server.clients(), 0, "dead client slot was not reclaimed");

        let mut third = http_get(addr, "/events");
        let head = read_until(&mut third, ": connected", Duration::from_secs(5));
        assert!(head.contains("HTTP/1.1 200"), "freed slot refused: {head:?}");
        server.shutdown();
    }

    /// Threads alive in this process (the PR 8 leak assertion pattern).
    fn live_threads() -> usize {
        std::fs::read_dir("/proc/self/task").map_or(0, |d| d.count())
    }

    #[test]
    fn repeated_start_shutdown_cycles_leak_no_threads() {
        let baseline = live_threads();
        for _ in 0..3 {
            let (server, sink, _inj) = start_test_server(2);
            let mut es = http_get(server.addr(), "/events");
            read_until(&mut es, ": connected", Duration::from_secs(5));
            sink.emit(ServeEvent::Shutdown);
            server.shutdown();
            let tail = read_until(&mut es, "event: shutdown", Duration::from_secs(5));
            assert!(
                tail.contains("event: shutdown"),
                "drain must close streams with the final typed event, got {tail:?}"
            );
        }
        // Joined threads can take a beat to vanish from /proc.
        let start = Instant::now();
        while live_threads() > baseline && start.elapsed() < Duration::from_secs(10) {
            std::thread::sleep(Duration::from_millis(50));
        }
        assert!(
            live_threads() <= baseline,
            "thread leak: {} > baseline {}",
            live_threads(),
            baseline
        );
    }
}
