//! The batched decode step: one forward pass advancing every lane of a
//! serving batch by one token, bit-identical per lane to the
//! single-sequence engine.
//!
//! The identity contract is what makes per-request fault isolation
//! *checkable*: a clean request served in a batch of N must emit exactly
//! the tokens its solo [`Model::generate`] would. The batch step therefore
//! does not invent new math — every per-lane computation replicates the
//! engine's operation and reduction order:
//!
//! * the batched linear layers go through
//!   [`ft2_tensor::matmul_transb_batch_into`], whose panel-major loop
//!   produces each output row with the exact `dot4`/`dot` reductions the
//!   row-major kernel uses — one weight-panel pass amortised over the
//!   batch's activation rows, zero numeric divergence;
//! * normalisation runs on the whole batch matrix (norms are row-local)
//!   with the engine's per-position activation gain applied per lane;
//! * attention is computed lane-major over the arena's paged K/V rows with
//!   the engine's per-head score/softmax/value loops, parallelised across
//!   lanes on the [`WorkStealingPool`] (lanes write disjoint rows, so the
//!   schedule cannot change results);
//! * taps fire per lane on a one-row staging view in the engine's layer
//!   order (K, Q, V, out-proj, MLP), with each lane's own `step` and
//!   position, so per-request injectors and detectors observe exactly what
//!   they would single-sequence.

use crate::arena::{KvArena, KvSeq};
use ft2_model::block::{normed_into, POSITION_GAIN};
use ft2_model::config::{Activation, ArchStyle, LayerKind, ModelConfig, RopeTable};
use ft2_model::hooks::{HookKind, LayerTap, TapCtx, TapPoint};
use ft2_model::Model;
use ft2_parallel::WorkStealingPool;
use ft2_tensor::ops::mul_inplace;
use ft2_tensor::{
    add_inplace, argmax, dot, gelu_inplace, relu_inplace, silu_inplace, DType, Matrix,
};

/// One request's view of a batch step: the token to decode, its absolute
/// position, the generation step number (for tap contexts), the request's
/// paged KV sequence, and an optional per-request tap.
pub struct BatchLane<'a> {
    /// Input token for this step (the previously accepted token).
    pub token: u32,
    /// Absolute sequence position of `token`.
    pub pos: usize,
    /// Generation step number (engine numbering: step `s >= 1` decodes
    /// token `s` given token `s - 1`).
    pub step: usize,
    /// The request's KV pages; `seq.len()` must equal `pos` on entry.
    pub seq: &'a mut KvSeq,
    /// Per-request tap (fault injector, detector); `None` for tap-less
    /// requests, which skip the staging copies entirely.
    pub tap: Option<&'a mut (dyn LayerTap + Send + 'static)>,
}

/// Reusable buffers of the batched decode step (the serving analogue of
/// the engine's `DecodeScratch`): allocated once per scheduler and
/// `reset` in place every step.
#[derive(Default)]
pub struct BatchScratch {
    x: Matrix,
    normed: Matrix,
    q: Matrix,
    k: Matrix,
    v: Matrix,
    scores: Matrix,
    ctx: Matrix,
    attn_out: Matrix,
    h: Matrix,
    up: Matrix,
    mlp_out: Matrix,
    hidden: Matrix,
    logits: Matrix,
    stage: Matrix,
}

impl BatchScratch {
    /// Fresh scratch; buffers grow to steady-state sizes on first use.
    pub fn new() -> BatchScratch {
        BatchScratch::default()
    }
}

fn activate(act: Activation, m: &mut Matrix) {
    match act {
        Activation::Relu => relu_inplace(m),
        Activation::Gelu => gelu_inplace(m),
        Activation::Silu => silu_inplace(m),
    }
}

/// The engine's `softmax_rows` inner loop on one row: max-subtract, exp,
/// single-pass sum, multiply by the reciprocal. Replicated verbatim so a
/// lane's decode softmax is bit-identical to the single-sequence path.
fn softmax_row(row: &mut [f32]) {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    let inv = 1.0 / sum;
    for v in row.iter_mut() {
        *v *= inv;
    }
}

/// Table-driven RoPE on a single row at absolute position `pos` — the
/// per-row body of `apply_rope_with`.
fn rope_row(row: &mut [f32], heads: usize, table: &RopeTable, pos: usize) {
    let half = table.half();
    let head_dim = 2 * half;
    let (sin, cos) = table.at(pos);
    for h in 0..heads {
        let base = h * head_dim;
        for i in 0..half {
            let a = row[base + 2 * i];
            let b = row[base + 2 * i + 1];
            row[base + 2 * i] = a * cos[i] - b * sin[i];
            row[base + 2 * i + 1] = a * sin[i] + b * cos[i];
        }
    }
}

/// Fire each lane's tap on its own row of `data` through a one-row staging
/// matrix, so a tap observes exactly the `[1, features]` view the
/// single-sequence engine hands it (same step, same first position).
fn fire_rows(
    lanes: &mut [BatchLane<'_>],
    data: &mut Matrix,
    block: usize,
    layer: LayerKind,
    hook: HookKind,
    dtype: DType,
    stage: &mut Matrix,
) {
    for (r, lane) in lanes.iter_mut().enumerate() {
        let Some(tap) = lane.tap.as_mut() else {
            continue;
        };
        let ctx = TapCtx {
            point: TapPoint { block, layer },
            hook,
            step: lane.step,
            first_pos: lane.pos,
            dtype,
        };
        stage.reset(1, data.cols());
        stage.row_mut(0).copy_from_slice(data.row(r));
        tap.on_output(&ctx, stage);
        data.row_mut(r).copy_from_slice(stage.row(0));
    }
}

/// Per-row normalisation plus the engine's position-dependent activation
/// gain, with each lane's own absolute position.
fn normed_gained(
    config: &ModelConfig,
    params: &ft2_model::weights::NormParams,
    x: &Matrix,
    lanes: &[BatchLane<'_>],
    y: &mut Matrix,
) {
    normed_into(config, params, x, y);
    for (r, lane) in lanes.iter().enumerate() {
        let gain = 1.0 + POSITION_GAIN * lane.pos as f32;
        for v in y.row_mut(r) {
            *v *= gain;
        }
    }
}

/// Raw pointer handed to the lane-parallel attention tasks. Each task `r`
/// touches only row `r` of the matrix behind the pointer, so concurrent
/// tasks never alias.
struct RowSlab(*mut f32, usize);

impl RowSlab {
    /// Row `r` of the slab as a mutable slice of `len <= stride` elements.
    ///
    /// # Safety
    /// The caller must be the only task touching row `r` while the slice
    /// lives, and the backing matrix must outlive it.
    // Takes `&self` deliberately: the closure must capture the whole slab
    // (not the raw-pointer field) so the manual Send/Sync impls apply, and
    // exclusivity is per-row (caller-guaranteed), not per-slab.
    #[allow(clippy::mut_from_ref)]
    unsafe fn row_mut(&self, r: usize, len: usize) -> &mut [f32] {
        debug_assert!(len <= self.1);
        // SAFETY: rows are disjoint `stride`-strided ranges of one live
        // allocation; the caller guarantees exclusive access to row `r`.
        unsafe { std::slice::from_raw_parts_mut(self.0.add(r * self.1), len) }
    }
}

// SAFETY: tasks index disjoint rows (task r writes rows [r*stride,
// (r+1)*stride) only), and the pool's batch barrier ends all tasks before
// the borrow of the underlying matrix resumes.
unsafe impl Send for RowSlab {}
// SAFETY: same disjoint-rows argument — no two tasks read or write the
// same element.
unsafe impl Sync for RowSlab {}

/// Advance every lane by one decode step. Reserves each lane's KV slot,
/// runs the batched forward pass, and returns the next token per lane.
/// Lanes that subsequently roll back truncate their [`KvSeq`] and discard
/// the returned token; accepted lanes keep both.
pub fn batch_step(
    model: &Model,
    arena: &mut KvArena,
    lanes: &mut [BatchLane<'_>],
    pool: &WorkStealingPool,
    scratch: &mut BatchScratch,
) -> Vec<u32> {
    assert!(!lanes.is_empty(), "batch_step on an empty batch");
    let config = model.config();
    let weights = model.weights();
    let n = lanes.len();
    let hidden = config.hidden;
    let heads = config.heads;
    let head_dim = config.head_dim();
    let dtype = config.dtype;

    // Reserve this step's KV slot per lane and build the per-lane row maps
    // (identical across blocks, so computed once per step).
    let mut row_maps: Vec<Vec<usize>> = Vec::with_capacity(n);
    for lane in lanes.iter_mut() {
        debug_assert_eq!(lane.seq.len(), lane.pos, "KV sequence out of sync");
        lane.seq.push(arena);
        row_maps.push((0..=lane.pos).map(|j| lane.seq.row_of(j)).collect());
    }
    let max_total = lanes.iter().map(|l| l.pos + 1).max().unwrap_or(1);

    // Embedding, replicating the engine's per-token lookup at each lane's
    // own position, then one whole-matrix quantize (elementwise).
    scratch.x.reset(n, hidden);
    for (r, lane) in lanes.iter().enumerate() {
        let t = (lane.token as usize) % config.vocab;
        scratch.x.row_mut(r).copy_from_slice(weights.embed.row(t));
        if let Some(pos_embed) = &weights.pos_embed {
            let p = lane.pos.min(pos_embed.rows() - 1);
            for (v, &pe) in scratch.x.row_mut(r).iter_mut().zip(pos_embed.row(p)) {
                *v += pe;
            }
        }
    }
    scratch.x.quantize(dtype);

    let rope = model.rope_table();
    let scale = 1.0 / (head_dim as f32).sqrt();

    for (b, bw) in weights.blocks.iter().enumerate() {
        // Attention sub-block: x = x + Attn(Norm(x)), engine tap order
        // K, Q, V, then RoPE, then the cache append.
        normed_gained(config, &bw.attn_norm, &scratch.x, lanes, &mut scratch.normed);
        bw.k_proj.forward_batch_into(&scratch.normed, dtype, &mut scratch.k);
        fire_rows(lanes, &mut scratch.k, b, LayerKind::KProj, HookKind::LinearOutput, dtype, &mut scratch.stage);
        bw.q_proj.forward_batch_into(&scratch.normed, dtype, &mut scratch.q);
        fire_rows(lanes, &mut scratch.q, b, LayerKind::QProj, HookKind::LinearOutput, dtype, &mut scratch.stage);
        bw.v_proj.forward_batch_into(&scratch.normed, dtype, &mut scratch.v);
        fire_rows(lanes, &mut scratch.v, b, LayerKind::VProj, HookKind::LinearOutput, dtype, &mut scratch.stage);

        if config.style == ArchStyle::LlamaStyle {
            let table = rope.expect("Llama-style model without a RoPE table");
            for (r, lane) in lanes.iter().enumerate() {
                rope_row(scratch.q.row_mut(r), heads, table, lane.pos);
                rope_row(scratch.k.row_mut(r), heads, table, lane.pos);
            }
        }

        // Append this step's K/V to each lane's reserved arena row.
        for (r, lane) in lanes.iter().enumerate() {
            let row = lane.seq.row_of(lane.pos);
            arena.k_row_mut(b, row).copy_from_slice(scratch.k.row(r));
            arena.v_row_mut(b, row).copy_from_slice(scratch.v.row(r));
        }

        // Lane-parallel attention over the paged cache. Each lane runs the
        // engine's head-major score/softmax/value loops against its own
        // rows of `scores`/`ctx`, so the parallel schedule cannot change
        // any result.
        scratch.scores.reset(n, max_total);
        scratch.ctx.reset(n, hidden);
        {
            let scores_ptr = RowSlab(scratch.scores.as_mut_slice().as_mut_ptr(), max_total);
            let ctx_ptr = RowSlab(scratch.ctx.as_mut_slice().as_mut_ptr(), hidden);
            let q = &scratch.q;
            let arena_ref: &KvArena = arena;
            let positions: Vec<usize> = lanes.iter().map(|l| l.pos).collect();
            let row_maps = &row_maps;
            let lane_attn = |r: usize| {
                let pos = positions[r];
                let total = pos + 1;
                let rows = &row_maps[r];
                // SAFETY: row r of each slab belongs to this task alone
                // (see RowSlab); the slabs outlive the pool batch.
                let srow = unsafe { scores_ptr.row_mut(r, total) };
                // SAFETY: as above — disjoint ctx row r.
                let crow = unsafe { ctx_ptr.row_mut(r, hidden) };
                for h in 0..heads {
                    let base = h * head_dim;
                    let qrow = &q.row(r)[base..base + head_dim];
                    for (j, s) in srow.iter_mut().enumerate() {
                        *s = dot(qrow, &arena_ref.k_row(b, rows[j])[base..base + head_dim]) * scale;
                    }
                    softmax_row(srow);
                    let out_row = &mut crow[base..base + head_dim];
                    for (j, &w) in srow.iter().enumerate() {
                        let vrow = &arena_ref.v_row(b, rows[j])[base..base + head_dim];
                        for (o, &vv) in out_row.iter_mut().zip(vrow) {
                            *o += w * vv;
                        }
                    }
                }
            };
            if n > 1 {
                let panics = pool.try_run(n, 1, lane_attn);
                assert!(
                    panics.is_empty(),
                    "batch attention task panicked: {}",
                    panics[0]
                );
            } else {
                lane_attn(0);
            }
        }

        bw.out_proj.forward_batch_into(&scratch.ctx, dtype, &mut scratch.attn_out);
        fire_rows(lanes, &mut scratch.attn_out, b, LayerKind::OutProj, HookKind::LinearOutput, dtype, &mut scratch.stage);
        add_inplace(&mut scratch.x, &scratch.attn_out);

        // MLP sub-block: x = x + MLP(Norm(x)), engine tap order preserved.
        normed_gained(config, &bw.mlp_norm, &scratch.x, lanes, &mut scratch.normed);
        match config.style {
            ArchStyle::OptStyle => {
                let (fc1, fc2) = bw.fc.as_ref().expect("OPT-style block without FC");
                fc1.forward_batch_into(&scratch.normed, dtype, &mut scratch.h);
                fire_rows(lanes, &mut scratch.h, b, LayerKind::Fc1, HookKind::LinearOutput, dtype, &mut scratch.stage);
                activate(config.activation, &mut scratch.h);
                fire_rows(lanes, &mut scratch.h, b, LayerKind::Fc1, HookKind::ActivationOutput, dtype, &mut scratch.stage);
                fc2.forward_batch_into(&scratch.h, dtype, &mut scratch.mlp_out);
                fire_rows(lanes, &mut scratch.mlp_out, b, LayerKind::Fc2, HookKind::LinearOutput, dtype, &mut scratch.stage);
            }
            ArchStyle::LlamaStyle => {
                let (gate, up, down) = bw.gated.as_ref().expect("Llama-style block without gated MLP");
                gate.forward_batch_into(&scratch.normed, dtype, &mut scratch.h);
                fire_rows(lanes, &mut scratch.h, b, LayerKind::GateProj, HookKind::LinearOutput, dtype, &mut scratch.stage);
                up.forward_batch_into(&scratch.normed, dtype, &mut scratch.up);
                fire_rows(lanes, &mut scratch.up, b, LayerKind::UpProj, HookKind::LinearOutput, dtype, &mut scratch.stage);
                activate(config.activation, &mut scratch.h);
                fire_rows(lanes, &mut scratch.h, b, LayerKind::GateProj, HookKind::ActivationOutput, dtype, &mut scratch.stage);
                mul_inplace(&mut scratch.h, &scratch.up);
                down.forward_batch_into(&scratch.h, dtype, &mut scratch.mlp_out);
                fire_rows(lanes, &mut scratch.mlp_out, b, LayerKind::DownProj, HookKind::LinearOutput, dtype, &mut scratch.stage);
            }
        }
        add_inplace(&mut scratch.x, &scratch.mlp_out);
    }

    // Final norm (no positional gain) and the batched LM head.
    normed_into(config, &weights.final_norm, &scratch.x, &mut scratch.hidden);
    weights
        .lm_head
        .forward_batch_into(&scratch.hidden, dtype, &mut scratch.logits);
    (0..n).map(|r| argmax(scratch.logits.row(r)) as u32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft2_model::engine::KvCache;
    use ft2_model::{ModelConfig, TapList};

    /// Decode a prompt token-by-token with the single-sequence engine path
    /// (forward_step per position), returning the cache and tokens.
    fn reference_decode(model: &Model, prompt: &[u32], gen: usize) -> (KvCache, Vec<u32>) {
        let mut cache = KvCache::new(model.config());
        let mut taps = TapList::new();
        let hidden = model.forward_step(prompt, 0, 0, &mut cache, &mut taps);
        let last = hidden.slice_rows(hidden.rows() - 1, hidden.rows());
        let mut tokens = vec![argmax(&model.logits(&last)) as u32];
        for step in 1..gen {
            let pos = prompt.len() + step - 1;
            let h = model.forward_step(&[tokens[step - 1]], pos, step, &mut cache, &mut taps);
            tokens.push(argmax(&model.logits(&h)) as u32);
        }
        (cache, tokens)
    }

    /// Prefill a lane by copying the engine's prefill cache into the arena.
    fn arena_prefill(
        model: &Model,
        arena: &mut KvArena,
        seq: &mut KvSeq,
        prompt: &[u32],
    ) -> u32 {
        let mut cache = KvCache::new(model.config());
        let mut taps = TapList::new();
        let hidden = model.forward_step(prompt, 0, 0, &mut cache, &mut taps);
        for j in 0..prompt.len() {
            let row = seq.push(arena);
            for b in 0..cache.num_blocks() {
                arena.k_row_mut(b, row).copy_from_slice(cache.block(b).k.row(j));
                arena.v_row_mut(b, row).copy_from_slice(cache.block(b).v.row(j));
            }
        }
        let last = hidden.slice_rows(hidden.rows() - 1, hidden.rows());
        argmax(&model.logits(&last)) as u32
    }

    #[test]
    fn batched_decode_is_bit_identical_to_the_engine() {
        let pool = WorkStealingPool::new(2);
        for config in [ModelConfig::tiny_opt(), ModelConfig::tiny_llama()] {
            let model = Model::new(config);
            let prompts: [&[u32]; 3] = [&[3, 14, 15, 92, 6], &[1, 2, 3], &[9, 8, 7, 6, 5, 4]];
            let gen = 6;
            let refs: Vec<(KvCache, Vec<u32>)> = prompts
                .iter()
                .map(|p| reference_decode(&model, p, gen))
                .collect();

            let mut arena = KvArena::new(model.config().blocks, model.config().hidden);
            let mut seqs: Vec<KvSeq> = prompts.iter().map(|_| KvSeq::new()).collect();
            let mut tokens: Vec<Vec<u32>> = Vec::new();
            for (p, seq) in prompts.iter().zip(seqs.iter_mut()) {
                tokens.push(vec![arena_prefill(&model, &mut arena, seq, p)]);
            }
            let mut scratch = BatchScratch::new();
            for step in 1..gen {
                let mut lanes: Vec<BatchLane<'_>> = seqs
                    .iter_mut()
                    .enumerate()
                    .map(|(i, seq)| BatchLane {
                        token: tokens[i][step - 1],
                        pos: prompts[i].len() + step - 1,
                        step,
                        seq,
                        tap: None,
                    })
                    .collect();
                let next = batch_step(&model, &mut arena, &mut lanes, &pool, &mut scratch);
                drop(lanes);
                for (i, t) in next.into_iter().enumerate() {
                    tokens[i].push(t);
                }
            }
            for (i, (cache, ref_tokens)) in refs.iter().enumerate() {
                assert_eq!(&tokens[i], ref_tokens, "lane {i} tokens diverged");
                // The arena rows must be bit-identical to the engine cache.
                for j in 0..seqs[i].len() {
                    let row = seqs[i].row_of(j);
                    for b in 0..cache.num_blocks() {
                        assert_eq!(arena.k_row(b, row), cache.block(b).k.row(j), "K row {j} block {b}");
                        assert_eq!(arena.v_row(b, row), cache.block(b).v.row(j), "V row {j} block {b}");
                    }
                }
            }
        }
    }

    #[test]
    fn batch_results_do_not_depend_on_thread_count() {
        let model = Model::new(ModelConfig::tiny_llama());
        let prompts: [&[u32]; 4] = [&[1, 2, 3], &[4, 5, 6, 7], &[8, 9], &[10, 11, 12]];
        let mut outputs = Vec::new();
        for threads in [1usize, 4] {
            let pool = WorkStealingPool::new(threads);
            let mut arena = KvArena::new(model.config().blocks, model.config().hidden);
            let mut seqs: Vec<KvSeq> = prompts.iter().map(|_| KvSeq::new()).collect();
            let mut tokens: Vec<Vec<u32>> = prompts
                .iter()
                .zip(seqs.iter_mut())
                .map(|(p, seq)| vec![arena_prefill(&model, &mut arena, seq, p)])
                .collect();
            let mut scratch = BatchScratch::new();
            for step in 1..5 {
                let mut lanes: Vec<BatchLane<'_>> = seqs
                    .iter_mut()
                    .enumerate()
                    .map(|(i, seq)| BatchLane {
                        token: tokens[i][step - 1],
                        pos: prompts[i].len() + step - 1,
                        step,
                        seq,
                        tap: None,
                    })
                    .collect();
                let next = batch_step(&model, &mut arena, &mut lanes, &pool, &mut scratch);
                drop(lanes);
                for (i, t) in next.into_iter().enumerate() {
                    tokens[i].push(t);
                }
            }
            outputs.push(tokens);
        }
        assert_eq!(outputs[0], outputs[1]);
    }
}
