//! A per-request fault-storm injector for serving tests and benches.
//!
//! [`StormTap`] is the serving analogue of the engine tests' transient-storm
//! tap: it corrupts the value-projection output of block 0 on a configurable
//! schedule and reports a [`AnomalyVerdict::Storm`] for any step it struck,
//! driving the scheduler's per-request recovery ladder. The strike schedule
//! follows the fault model's [`FaultDuration`]: a transient storm strikes a
//! single step until rolled back enough times, an intermittent storm
//! re-strikes on a period, and a persistent storm never heals — the case
//! that must end in eviction rather than stalling the batch.

use ft2_fault::FaultDuration;
use ft2_model::config::LayerKind;
use ft2_model::hooks::{AnomalyVerdict, HookKind, LayerTap, StepReport, TapCtx};
use ft2_tensor::Matrix;

/// Magnitude added to every element of the struck output — far outside any
/// activation range, so downstream detectors cannot miss it.
const STORM_MAGNITUDE: f32 = 1.0e3;

/// How a strike corrupts the struck output.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StrikeMode {
    /// Add [`STORM_MAGNITUDE`] to every element (the classic storm).
    AddMagnitude,
    /// Flip a high exponent bit of the first element — the single-bit-upset
    /// model driven by the live `/inject` endpoint ("flip a bit in block 2
    /// now"): one element jumps orders of magnitude while the rest of the
    /// output is untouched.
    BitFlip,
}

/// Fault injector confined to one request: storms the VProj output of a
/// configurable block (default 0) according to a [`FaultDuration`] schedule.
pub struct StormTap {
    /// Decoder block whose VProj output is struck.
    pub block: usize,
    /// First generation step the storm can strike.
    pub target_step: usize,
    /// Strike schedule relative to `target_step`.
    pub duration: FaultDuration,
    /// Rollback attempts after which the fault heals (transient and
    /// intermittent storms model re-strikes of a fading fault; persistent
    /// storms ignore this).
    pub heal_after: u32,
    /// How a strike corrupts the output.
    pub mode: StrikeMode,
    attempts: u32,
    stormed_this_step: bool,
    /// Total strikes delivered (visible to tests).
    pub strikes: u64,
}

impl StormTap {
    /// Storm the given step once, healing after `heal_after` rollbacks.
    pub fn transient(target_step: usize, heal_after: u32) -> StormTap {
        StormTap::new(target_step, FaultDuration::Transient, heal_after)
    }

    /// Storm every step from `target_step` on, forever.
    pub fn persistent(target_step: usize) -> StormTap {
        StormTap::new(target_step, FaultDuration::Persistent, u32::MAX)
    }

    /// A single-bit upset in `block` at `target_step`, healing after one
    /// rollback: the live-injection fault of the `--web` demo.
    pub fn flip(block: usize, target_step: usize) -> StormTap {
        StormTap::new(target_step, FaultDuration::Transient, 1)
            .with_block(block)
            .with_mode(StrikeMode::BitFlip)
    }

    /// Fully parameterised constructor (block 0, add-magnitude strikes).
    pub fn new(target_step: usize, duration: FaultDuration, heal_after: u32) -> StormTap {
        StormTap {
            block: 0,
            target_step,
            duration,
            heal_after,
            mode: StrikeMode::AddMagnitude,
            attempts: 0,
            stormed_this_step: false,
            strikes: 0,
        }
    }

    /// Strike a different decoder block.
    pub fn with_block(mut self, block: usize) -> StormTap {
        self.block = block;
        self
    }

    /// Change how strikes corrupt the output.
    pub fn with_mode(mut self, mode: StrikeMode) -> StormTap {
        self.mode = mode;
        self
    }

    fn strikes_at(&self, step: usize) -> bool {
        match self.duration {
            FaultDuration::Transient => {
                step == self.target_step && self.attempts < self.heal_after
            }
            FaultDuration::Intermittent { period } => {
                step >= self.target_step
                    && (step - self.target_step).is_multiple_of(period.max(1))
                    && self.attempts < self.heal_after
            }
            FaultDuration::Persistent => step >= self.target_step,
        }
    }
}

impl LayerTap for StormTap {
    fn on_output(&mut self, ctx: &TapCtx, data: &mut Matrix) {
        if ctx.point.block != self.block
            || ctx.point.layer != LayerKind::VProj
            || ctx.hook != HookKind::LinearOutput
            || !self.strikes_at(ctx.step)
        {
            return;
        }
        match self.mode {
            StrikeMode::AddMagnitude => {
                for v in data.as_mut_slice() {
                    *v += STORM_MAGNITUDE;
                }
            }
            StrikeMode::BitFlip => {
                let slice = data.as_mut_slice();
                if let Some(v) = slice.first_mut() {
                    // Flip bit 30 (the high exponent bit below the sign):
                    // a finite value jumps orders of magnitude, exactly the
                    // excursion shape of a real single-bit upset.
                    *v = f32::from_bits(v.to_bits() ^ (1 << 30));
                }
            }
        }
        self.stormed_this_step = true;
        self.strikes += 1;
    }

    fn end_step(&mut self, _step: usize) -> StepReport {
        let verdict = if self.stormed_this_step {
            AnomalyVerdict::Storm
        } else {
            AnomalyVerdict::Clean
        };
        let mut report = StepReport {
            verdict,
            ..StepReport::default()
        };
        if self.stormed_this_step {
            report.record_block_hit(self.block);
        }
        self.stormed_this_step = false;
        report
    }

    fn on_rollback(&mut self, _step: usize, _attempt: u32) {
        self.attempts += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_storm_heals_after_rollbacks() {
        let mut tap = StormTap::transient(3, 2);
        assert!(!tap.strikes_at(2));
        assert!(tap.strikes_at(3));
        tap.on_rollback(3, 0);
        assert!(tap.strikes_at(3));
        tap.on_rollback(3, 1);
        assert!(!tap.strikes_at(3), "storm must heal after two rollbacks");
        assert!(!tap.strikes_at(4));
    }

    #[test]
    fn persistent_storm_never_heals() {
        let mut tap = StormTap::persistent(2);
        for _ in 0..16 {
            tap.on_rollback(2, 0);
        }
        assert!(tap.strikes_at(2));
        assert!(tap.strikes_at(40));
    }

    #[test]
    fn intermittent_storm_strikes_on_period() {
        let tap = StormTap::new(2, FaultDuration::Intermittent { period: 3 }, u32::MAX);
        assert!(tap.strikes_at(2));
        assert!(!tap.strikes_at(3));
        assert!(!tap.strikes_at(4));
        assert!(tap.strikes_at(5));
    }

    #[test]
    fn end_step_reports_storm_only_after_a_strike() {
        let mut tap = StormTap::transient(1, 1);
        let mut data = Matrix::zeros(1, 4);
        let ctx = TapCtx {
            point: ft2_model::hooks::TapPoint {
                block: 0,
                layer: LayerKind::VProj,
            },
            hook: HookKind::LinearOutput,
            step: 1,
            first_pos: 5,
            dtype: ft2_tensor::DType::F32,
        };
        tap.on_output(&ctx, &mut data);
        let report = tap.end_step(1);
        assert_eq!(report.verdict, AnomalyVerdict::Storm);
        assert_eq!(report.hit_blocks().collect::<Vec<_>>(), vec![(0, 1)]);
        assert_eq!(tap.end_step(1).verdict, AnomalyVerdict::Clean, "flag resets");
        assert!(data.row(0).iter().all(|&v| v == STORM_MAGNITUDE));
    }

    #[test]
    fn flip_targets_its_block_and_flips_one_exponent_bit() {
        let mut tap = StormTap::flip(2, 1);
        let mut data = Matrix::from_vec(1, 4, vec![1.5, 1.5, 1.5, 1.5]);
        let mut ctx = TapCtx {
            point: ft2_model::hooks::TapPoint {
                block: 0,
                layer: LayerKind::VProj,
            },
            hook: HookKind::LinearOutput,
            step: 1,
            first_pos: 5,
            dtype: ft2_tensor::DType::F32,
        };
        // Block 0 is not the target: untouched.
        tap.on_output(&ctx, &mut data);
        assert!(data.row(0).iter().all(|&v| v == 1.5));
        assert_eq!(tap.end_step(1).verdict, AnomalyVerdict::Clean);
        // Block 2 is: exactly one element changes, by an exponent flip
        // (compare bits — depending on the value, the flip may land on a
        // non-finite encoding, which is exactly what a real SBU can do).
        ctx.point.block = 2;
        tap.on_output(&ctx, &mut data);
        assert_eq!(data.get(0, 0).to_bits(), 1.5f32.to_bits() ^ (1 << 30));
        assert!(data.row(0)[1..].iter().all(|&v| v == 1.5));
        let report = tap.end_step(1);
        assert_eq!(report.verdict, AnomalyVerdict::Storm);
        assert_eq!(report.hit_blocks().collect::<Vec<_>>(), vec![(2, 1)]);
        // Transient with heal_after=1: one rollback heals it.
        tap.on_rollback(1, 0);
        assert!(!tap.strikes_at(1));
    }
}
