//! A per-request fault-storm injector for serving tests and benches.
//!
//! [`StormTap`] is the serving analogue of the engine tests' transient-storm
//! tap: it corrupts the value-projection output of block 0 on a configurable
//! schedule and reports a [`AnomalyVerdict::Storm`] for any step it struck,
//! driving the scheduler's per-request recovery ladder. The strike schedule
//! follows the fault model's [`FaultDuration`]: a transient storm strikes a
//! single step until rolled back enough times, an intermittent storm
//! re-strikes on a period, and a persistent storm never heals — the case
//! that must end in eviction rather than stalling the batch.

use ft2_fault::FaultDuration;
use ft2_model::config::LayerKind;
use ft2_model::hooks::{AnomalyVerdict, HookKind, LayerTap, StepReport, TapCtx};
use ft2_tensor::Matrix;

/// Magnitude added to every element of the struck output — far outside any
/// activation range, so downstream detectors cannot miss it.
const STORM_MAGNITUDE: f32 = 1.0e3;

/// Fault injector confined to one request: storms the VProj output of
/// block 0 according to a [`FaultDuration`] schedule.
pub struct StormTap {
    /// First generation step the storm can strike.
    pub target_step: usize,
    /// Strike schedule relative to `target_step`.
    pub duration: FaultDuration,
    /// Rollback attempts after which the fault heals (transient and
    /// intermittent storms model re-strikes of a fading fault; persistent
    /// storms ignore this).
    pub heal_after: u32,
    attempts: u32,
    stormed_this_step: bool,
    /// Total strikes delivered (visible to tests).
    pub strikes: u64,
}

impl StormTap {
    /// Storm the given step once, healing after `heal_after` rollbacks.
    pub fn transient(target_step: usize, heal_after: u32) -> StormTap {
        StormTap::new(target_step, FaultDuration::Transient, heal_after)
    }

    /// Storm every step from `target_step` on, forever.
    pub fn persistent(target_step: usize) -> StormTap {
        StormTap::new(target_step, FaultDuration::Persistent, u32::MAX)
    }

    /// Fully parameterised constructor.
    pub fn new(target_step: usize, duration: FaultDuration, heal_after: u32) -> StormTap {
        StormTap {
            target_step,
            duration,
            heal_after,
            attempts: 0,
            stormed_this_step: false,
            strikes: 0,
        }
    }

    fn strikes_at(&self, step: usize) -> bool {
        match self.duration {
            FaultDuration::Transient => {
                step == self.target_step && self.attempts < self.heal_after
            }
            FaultDuration::Intermittent { period } => {
                step >= self.target_step
                    && (step - self.target_step).is_multiple_of(period.max(1))
                    && self.attempts < self.heal_after
            }
            FaultDuration::Persistent => step >= self.target_step,
        }
    }
}

impl LayerTap for StormTap {
    fn on_output(&mut self, ctx: &TapCtx, data: &mut Matrix) {
        if ctx.point.block != 0
            || ctx.point.layer != LayerKind::VProj
            || ctx.hook != HookKind::LinearOutput
            || !self.strikes_at(ctx.step)
        {
            return;
        }
        for v in data.as_mut_slice() {
            *v += STORM_MAGNITUDE;
        }
        self.stormed_this_step = true;
        self.strikes += 1;
    }

    fn end_step(&mut self, _step: usize) -> StepReport {
        let verdict = if self.stormed_this_step {
            AnomalyVerdict::Storm
        } else {
            AnomalyVerdict::Clean
        };
        self.stormed_this_step = false;
        StepReport {
            clamps: 0,
            nans: 0,
            verdict,
        }
    }

    fn on_rollback(&mut self, _step: usize, _attempt: u32) {
        self.attempts += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_storm_heals_after_rollbacks() {
        let mut tap = StormTap::transient(3, 2);
        assert!(!tap.strikes_at(2));
        assert!(tap.strikes_at(3));
        tap.on_rollback(3, 0);
        assert!(tap.strikes_at(3));
        tap.on_rollback(3, 1);
        assert!(!tap.strikes_at(3), "storm must heal after two rollbacks");
        assert!(!tap.strikes_at(4));
    }

    #[test]
    fn persistent_storm_never_heals() {
        let mut tap = StormTap::persistent(2);
        for _ in 0..16 {
            tap.on_rollback(2, 0);
        }
        assert!(tap.strikes_at(2));
        assert!(tap.strikes_at(40));
    }

    #[test]
    fn intermittent_storm_strikes_on_period() {
        let tap = StormTap::new(2, FaultDuration::Intermittent { period: 3 }, u32::MAX);
        assert!(tap.strikes_at(2));
        assert!(!tap.strikes_at(3));
        assert!(!tap.strikes_at(4));
        assert!(tap.strikes_at(5));
    }

    #[test]
    fn end_step_reports_storm_only_after_a_strike() {
        let mut tap = StormTap::transient(1, 1);
        let mut data = Matrix::zeros(1, 4);
        let ctx = TapCtx {
            point: ft2_model::hooks::TapPoint {
                block: 0,
                layer: LayerKind::VProj,
            },
            hook: HookKind::LinearOutput,
            step: 1,
            first_pos: 5,
            dtype: ft2_tensor::DType::F32,
        };
        tap.on_output(&ctx, &mut data);
        assert_eq!(tap.end_step(1).verdict, AnomalyVerdict::Storm);
        assert_eq!(tap.end_step(1).verdict, AnomalyVerdict::Clean, "flag resets");
        assert!(data.row(0).iter().all(|&v| v == STORM_MAGNITUDE));
    }
}
