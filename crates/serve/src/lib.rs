#![warn(missing_docs)]
//! # ft2-serve
//!
//! A continuous-batching serving runtime with per-request fault isolation,
//! extending the FT2 reproduction from single-generation fault tolerance
//! to a multi-request server. The paper's online detect/rollback loop
//! protects one generation; a server must protect many at once *without
//! letting one faulty request stall or corrupt its batchmates*.
//!
//! * [`arena`] — paged per-request KV storage: [`arena::KvArena`] owns one
//!   K/V slab per decoder block carved into fixed pages,
//!   [`arena::KvSeq`] maps a request's positions onto its pages, and
//!   [`arena::KvGuard`] carries per-position CRC seals for the repair
//!   rung. Requests allocate, roll back, and free pages independently.
//! * [`engine`] — the batched decode step: [`engine::batch_step`] advances
//!   every lane one token, bit-identical per lane to the single-sequence
//!   engine (batched linears via the panel-major batch GEMM, lane-major
//!   attention over the paged cache, per-lane taps in engine order).
//! * [`scheduler`] — the continuous-batching scheduler and per-request
//!   recovery ladder: a storming lane rolls back and re-decodes its own
//!   token while batchmates keep advancing; the repair rung sweeps the
//!   lane's KV seals and rebuilds corrupted positions; a lane that
//!   exhausts its budget is evicted with a typed
//!   [`scheduler::Outcome`], never stalling the batch.
//! * [`server`] — a threaded front door: submissions from any thread,
//!   bounded admission queue with backpressure, one worker owning the
//!   scheduler and decode pool, graceful drain on shutdown.
//! * [`replica`] — cross-replica failover: [`replica::ReplicaSet`] runs N
//!   independent replicas behind a health-gated router
//!   (`Healthy → Suspect → Quarantined → Rebuilding → Healthy`), fails
//!   in-flight requests over with their accepted-token prefixes intact
//!   (bit-identical continuation), and rebuilds quarantined replicas'
//!   weights live from a golden copy while survivors keep serving.
//! * [`storm`] — a per-request fault-storm injector
//!   ([`storm::StormTap`]) driving tests and the serving bench's
//!   fault-storm drill, scheduled by [`ft2_fault::FaultDuration`].
//! * [`event`] — the live observation stream: schedulers and replica sets
//!   mirror every ladder decision (token accept with its
//!   [`ft2_model::StepReport`], rollback, repair, eviction, completion,
//!   health transitions) onto an [`event::EventSink`] without perturbing
//!   the decode path.
//! * [`web`] — a zero-dependency HTTP/SSE front end
//!   ([`web::WebServer`]): streams [`event::ServeEvent`]s as Server-Sent
//!   Events, serves an embedded single-page viewer, and accepts live
//!   fault injection over `POST /inject`.

pub mod arena;
pub mod engine;
pub mod event;
pub mod replica;
pub mod scheduler;
pub mod server;
pub mod storm;
pub mod web;

pub use arena::{KvArena, KvGuard, KvSeq, KV_PAGE};
pub use engine::{batch_step, BatchLane, BatchScratch};
pub use event::{EventSink, ServeEvent};
pub use replica::{
    HealthTracker, ReplicaCompletion, ReplicaConfig, ReplicaHealth, ReplicaSet, ReplicaSetStats,
    RetryPolicy,
};
pub use scheduler::{
    Completion, EvictReason, Outcome, RejectReason, Request, Scheduler, ServeConfig, SubmitError,
};
pub use server::Server;
pub use storm::{StormTap, StrikeMode};
pub use web::{WebConfig, WebServer};
